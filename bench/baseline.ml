(* Benchmark baseline: a small, regression-checked performance snapshot.

   `dune exec bench/main.exe -- baseline [PATH]` measures, for each
   baseline workload:

   - simulated cycles and wall time of the Base (unreplicated) run;
   - per replication config (LC/CC x DMR/TMR): simulated cycles, the
     sync-phase overhead relative to Base (the paper's normalised
     slowdown), wall time under the Sequential and the Parallel engine,
     and the Sequential->Parallel wall-time speedup;
   - a determinism bit: the two engines must agree on final cycle and
     replica outputs, or the run is marked non-deterministic and the
     baseline write fails.

   The baseline also embeds the checkpoint-capture rows of
   [Ckpt_bench]: per workload, the words copied and capture wall time
   of full vs incremental capture, and the simulated ckpt.cost_cycles
   both modes charge end-to-end.

   The baseline further embeds serving rows ([Loadgen]): a closed-loop
   YCSB run through the NIC, a fault-campaign variant that recovers
   through rollback, and three ingress-checksum rows (fault-free
   checked run pricing the per-frame FT_Mem_Rep verification, plus the
   DMA-buffer flip campaign with checking off and on), each recording
   the simulated run-phase cycles, request outcome digests, completion
   / rollback / corruption / ingress-drop / redelivery counts (all
   exact), wall time under both engines, and the engines-agree
   determinism bit.

   The result is written as JSON (schema `rcoe-bench-baseline/v4`,
   documented in EXPERIMENTS.md) — commit it as BENCH_baseline.json.

   `dune exec bench/main.exe -- baseline-check [PATH]` re-measures and
   compares against the committed file, failing non-zero when

   - any simulated cycle count differs (the simulator is deterministic,
     so any drift is a real semantic change — regenerate the baseline
     deliberately if it is intentional);
   - either engine's wall time regresses by more than 10% on a workload
     aggregate (tolerance via RCOE_BENCH_TOLERANCE, a float, e.g. 0.25
     on noisy shared hardware);
   - a checkpoint row drifts: copied words or charged ckpt.cost_cycles
     differ at all, or the incremental capture wall time regresses by
     more than the same tolerance;
   - a serve row drifts: simulated cycles, outcome digest, completion
     or rollback counts differ at all, or either engine's wall time
     regresses beyond the tolerance;
   - the engines disagree (determinism failure — never tolerated).

   Wall times are host-dependent: regenerate the baseline when moving
   to different hardware. Speedup expectations are conditioned on the
   recorded `host.cores`: on a single-core host the parallel engine
   cannot beat the sequential one (domain scheduling overhead makes it
   slower) and only the determinism contract is meaningful. *)

open Rcoe_core
open Rcoe_workloads
open Rcoe_harness
module Json = Rcoe_obs.Json

let default_path = "BENCH_baseline.json"
let reps = 3
let max_cycles = 400_000_000

type wl = { wname : string; program : unit -> Rcoe_isa.Program.t }

(* Sized so a replicated run is long enough to time meaningfully but
   the full baseline stays in tens of seconds. md5sum is the
   compute-bound workload the speedup acceptance criterion refers to. *)
let workloads =
  [
    {
      wname = "md5sum";
      program =
        (fun () ->
          Md5sum.program ~message_words:128 ~iters:24 ~seed:5
            ~branch_count:false ());
    };
    {
      wname = "dhrystone";
      program =
        (fun () -> Dhrystone.program ~loops:2500 ~branch_count:false ());
    };
    {
      wname = "whetstone";
      program = (fun () -> Whetstone.program ~loops:400 ~branch_count:false ());
    };
  ]

let configs =
  [
    (Config.LC, 2); (Config.LC, 3); (Config.CC, 2); (Config.CC, 3);
  ]

let config_label mode n =
  Printf.sprintf "%s-%s" (Config.mode_to_string mode)
    (match n with 2 -> "DMR" | 3 -> "TMR" | n -> string_of_int n ^ "R")

let mk_config ~mode ~nreplicas ~engine =
  {
    (Runner.config_for ~mode ~nreplicas ~arch:Rcoe_machine.Arch.X86 ~seed:3 ())
    with
    Config.engine;
    exception_barriers = mode <> Config.Base;
  }

type measurement = { m_cycles : int; m_wall : float; m_out : string list }

(* Median-of-[reps] wall time over fresh systems; cycle count and
   outputs must agree across reps (they always do — the simulator is
   deterministic — but check rather than assume). *)
let measure ~mode ~nreplicas ~engine wl =
  let config = mk_config ~mode ~nreplicas ~engine in
  let one () =
    let sys = System.create ~config ~program:(wl.program ()) in
    let t0 = Unix.gettimeofday () in
    System.run sys ~max_cycles;
    let wall = Unix.gettimeofday () -. t0 in
    if not (System.finished sys) then
      failwith
        (Printf.sprintf "baseline: %s %s did not finish" wl.wname
           (config_label mode nreplicas));
    let outs = List.init nreplicas (fun rid -> System.output sys rid) in
    { m_cycles = System.now sys; m_wall = wall; m_out = outs }
  in
  let runs = List.init reps (fun _ -> one ()) in
  let first = List.hd runs in
  List.iter
    (fun m ->
      if m.m_cycles <> first.m_cycles || m.m_out <> first.m_out then
        failwith
          (Printf.sprintf "baseline: %s %s is not run-to-run deterministic"
             wl.wname (config_label mode nreplicas)))
    runs;
  let walls = List.sort compare (List.map (fun m -> m.m_wall) runs) in
  { first with m_wall = List.nth walls (reps / 2) }

type cfg_row = {
  c_label : string;
  c_mode : Config.mode;
  c_n : int;
  c_cycles : int;
  c_overhead : float;  (* (cycles - base_cycles) / base_cycles *)
  c_wall_seq : float;
  c_wall_par : float;
  c_speedup : float;  (* wall_seq / wall_par *)
  c_deterministic : bool;
}

type wl_row = {
  r_name : string;
  r_base_cycles : int;
  r_base_wall : float;
  r_configs : cfg_row list;
}

let measure_workload wl =
  Printf.printf "  %-10s base%!" wl.wname;
  let base =
    measure ~mode:Config.Base ~nreplicas:1 ~engine:Config.Sequential wl
  in
  let rows =
    List.map
      (fun (mode, n) ->
        Printf.printf " %s%!" (config_label mode n);
        let seq = measure ~mode ~nreplicas:n ~engine:Config.Sequential wl in
        let par = measure ~mode ~nreplicas:n ~engine:Config.Parallel wl in
        {
          c_label = config_label mode n;
          c_mode = mode;
          c_n = n;
          c_cycles = seq.m_cycles;
          c_overhead =
            float_of_int (seq.m_cycles - base.m_cycles)
            /. float_of_int base.m_cycles;
          c_wall_seq = seq.m_wall;
          c_wall_par = par.m_wall;
          c_speedup = seq.m_wall /. par.m_wall;
          c_deterministic =
            seq.m_cycles = par.m_cycles && seq.m_out = par.m_out;
        })
      configs
  in
  print_newline ();
  { r_name = wl.wname; r_base_cycles = base.m_cycles; r_base_wall = base.m_wall;
    r_configs = rows }

(* --- serving rows ------------------------------------------------------- *)

type serve_row = {
  s_name : string;
  s_ingress : bool;  (* FT_Mem_Rep ingress checksum path on? *)
  s_requests : int;
  s_cycles : int;  (* simulated run-phase cycles — exact *)
  s_completed : int;
  s_digest : int;  (* CRC-32 of the request outcome log — exact *)
  s_sorted_digest : int;  (* order-insensitive digest — exact *)
  s_rollbacks : int;
  s_corrupted : int;  (* client-visible value corruption — exact *)
  s_checked : int;  (* frames checksum-verified at ingress — exact *)
  s_dropped : int;  (* corrupt frames dropped/NACKed — exact *)
  s_redelivered : int;  (* dropped frames redelivered by client — exact *)
  s_wall_seq : float;
  s_wall_par : float;
  s_deterministic : bool;
}

let serve_records = 64
let serve_requests = 1_000
let serve_chunk = 8_000

(* serve-closed / serve-fault are the PR 7 rows (ingress checking off;
   the fault row recovers through rollback plus client retransmission).
   The three ingress rows quantify the server-side DMA-hole closure:

   - serve-checked prices the per-frame FT_Mem_Rep checksum on a
     fault-free run (overhead = cycles vs serve-closed, exact);
   - serve-dma-silent flips a bit in a queued DMA frame with checking
     off — the corruption sails into the store and surfaces only as
     client-visible value corruption (exact count, > 0 by contract);
   - serve-dma-recover runs the same campaign with checking on — the
     frame is dropped at ingress, the client redelivers, no client
     corruption, and the order-insensitive outcome digest equals the
     fault-free serve-checked row's. *)
(* fault_after chosen so the corrupted PUT's key is GET again before
   its next overwrite under this workload/seed — the silent row's
   corruption must be client-visible, or the contract below trips. *)
let dma_fault =
  { Loadgen.fault_after = 100; fault_bit = 9;
    fault_target = Loadgen.Dma_frame }

let serve_cases =
  [
    ("serve-closed", false, None);
    ( "serve-fault", false,
      Some { Loadgen.fault_after = 200; fault_bit = 7;
             fault_target = Loadgen.Sig_word } );
    ("serve-checked", true, None);
    ("serve-dma-silent", false, Some dma_fault);
    ("serve-dma-recover", true, Some dma_fault);
  ]

let serve_config ~engine ~ingress ~fault =
  let rollback_fault =
    match fault with
    | Some { Loadgen.fault_target = Loadgen.Sig_word; _ } -> true
    | _ -> false
  in
  {
    (Runner.config_for ~mode:Config.CC ~nreplicas:2
       ~arch:Rcoe_machine.Arch.X86 ~with_net:true ~seed:5 ())
    with
    Config.engine;
    exception_barriers = true;
    ingress_check = ingress;
    checkpoint_every = (if rollback_fault then 2 else 0);
    max_rollbacks = 3;
  }

let measure_serve_engine ~engine ~ingress ~fault =
  let one () =
    let t0 = Unix.gettimeofday () in
    let r =
      Loadgen.run
        ~config:(serve_config ~engine ~ingress ~fault)
        ~workload:Ycsb.A ~records:serve_records ~requests:serve_requests
        ~chunk:serve_chunk ?fault ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    if r.Loadgen.stalled then failwith "baseline: serve run stalled";
    (r, wall)
  in
  let runs = List.init reps (fun _ -> one ()) in
  let first, _ = List.hd runs in
  List.iter
    (fun ((r : Loadgen.result), _) ->
      if
        r.Loadgen.outcome_digest <> first.Loadgen.outcome_digest
        || r.Loadgen.elapsed_cycles <> first.Loadgen.elapsed_cycles
      then failwith "baseline: serve run is not run-to-run deterministic")
    runs;
  let walls = List.sort compare (List.map snd runs) in
  (first, List.nth walls (reps / 2))

let measure_serve () =
  Printf.printf "  serving   %!";
  let rows =
    List.map
      (fun (name, ingress, fault) ->
        Printf.printf " %s%!" name;
        let seq, wall_seq =
          measure_serve_engine ~engine:Config.Sequential ~ingress ~fault
        in
        let par, wall_par =
          measure_serve_engine ~engine:Config.Parallel ~ingress ~fault
        in
        {
          s_name = name;
          s_ingress = ingress;
          s_requests = serve_requests;
          s_cycles = seq.Loadgen.elapsed_cycles;
          s_completed = seq.Loadgen.completed;
          s_digest = seq.Loadgen.outcome_digest;
          s_sorted_digest = seq.Loadgen.outcome_sorted_digest;
          s_rollbacks = seq.Loadgen.rollbacks;
          s_corrupted = seq.Loadgen.counters.Ycsb.corrupted;
          s_checked = seq.Loadgen.ingress_checked;
          s_dropped = seq.Loadgen.ingress_dropped;
          s_redelivered = seq.Loadgen.redelivered;
          s_wall_seq = wall_seq;
          s_wall_par = wall_par;
          s_deterministic =
            seq.Loadgen.outcome_digest = par.Loadgen.outcome_digest
            && seq.Loadgen.end_sigs = par.Loadgen.end_sigs
            && System.now seq.Loadgen.sys = System.now par.Loadgen.sys
            && seq.Loadgen.ingress_dropped = par.Loadgen.ingress_dropped;
        })
      serve_cases
  in
  print_newline ();
  let broken = List.filter (fun s -> not s.s_deterministic) rows in
  if broken <> [] then begin
    List.iter
      (fun s ->
        Printf.eprintf
          "baseline: DETERMINISM FAILURE: %s: parallel != sequential\n"
          s.s_name)
      broken;
    exit 1
  end;
  (* Cross-row campaign contract: the same DMA-buffer flip must be
     client-visible with checking off and absorbed with it on — with
     the post-recovery outcome log (order-insensitive) matching the
     fault-free checked run bit for bit. *)
  let find n = List.find (fun s -> s.s_name = n) rows in
  let checked = find "serve-checked" in
  let silent = find "serve-dma-silent" in
  let recover = find "serve-dma-recover" in
  let contract = ref [] in
  if silent.s_corrupted < 1 then
    contract :=
      "serve-dma-silent: DMA flip was not client-visible (corrupted = 0)"
      :: !contract;
  if silent.s_dropped <> 0 then
    contract :=
      "serve-dma-silent: frames dropped with checking off" :: !contract;
  if recover.s_dropped < 1 then
    contract :=
      "serve-dma-recover: ingress check never dropped the corrupt frame"
      :: !contract;
  if recover.s_corrupted <> 0 then
    contract :=
      "serve-dma-recover: corruption leaked past the ingress check"
      :: !contract;
  if recover.s_sorted_digest <> checked.s_sorted_digest then
    contract :=
      "serve-dma-recover: outcome digest differs from fault-free run"
      :: !contract;
  if !contract <> [] then begin
    List.iter
      (fun m -> Printf.eprintf "baseline: CAMPAIGN FAILURE: %s\n" m)
      (List.rev !contract);
    exit 1
  end;
  Printf.printf
    "  ingress checksum overhead: %+d cycles (%.2f cycles/request)\n"
    (checked.s_cycles - (find "serve-closed").s_cycles)
    (float_of_int (checked.s_cycles - (find "serve-closed").s_cycles)
    /. float_of_int serve_requests);
  rows

let print_serve_table rows =
  let t =
    Rcoe_util.Table.create
      ~headers:
        [ "serve"; "ingress"; "cycles"; "completed"; "rollbacks";
          "corrupted"; "dropped"; "redeliv"; "seq wall"; "par wall";
          "deterministic" ]
  in
  List.iter
    (fun s ->
      Rcoe_util.Table.add_row t
        [
          s.s_name;
          (if s.s_ingress then "on" else "off");
          string_of_int s.s_cycles; string_of_int s.s_completed;
          string_of_int s.s_rollbacks; string_of_int s.s_corrupted;
          string_of_int s.s_dropped; string_of_int s.s_redelivered;
          Printf.sprintf "%.3fs" s.s_wall_seq;
          Printf.sprintf "%.3fs" s.s_wall_par;
          (if s.s_deterministic then "yes" else "NO");
        ])
    rows;
  Rcoe_util.Table.print t

let serve_json rows =
  let closed_cycles =
    match List.find_opt (fun s -> s.s_name = "serve-closed") rows with
    | Some s -> Some s.s_cycles
    | None -> None
  in
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           ([
              ("name", Json.String s.s_name);
              ("ingress_check", Json.Bool s.s_ingress);
              ("requests", Json.Int s.s_requests);
              ("cycles", Json.Int s.s_cycles);
              ("completed", Json.Int s.s_completed);
              ("digest", Json.Int s.s_digest);
              ("sorted_digest", Json.Int s.s_sorted_digest);
              ("rollbacks", Json.Int s.s_rollbacks);
              ("corrupted", Json.Int s.s_corrupted);
              ("ingress_checked", Json.Int s.s_checked);
              ("ingress_dropped", Json.Int s.s_dropped);
              ("redelivered", Json.Int s.s_redelivered);
              ("wall_seq_s", Json.Float s.s_wall_seq);
              ("wall_par_s", Json.Float s.s_wall_par);
              ("deterministic", Json.Bool s.s_deterministic);
            ]
           @
           match (s.s_name, closed_cycles) with
           | "serve-checked", Some c ->
               [
                 ( "csum_overhead_cycles_per_req",
                   Json.Float
                     (float_of_int (s.s_cycles - c)
                     /. float_of_int s.s_requests) );
               ]
           | _ -> []))
       rows)

let host_json () =
  Json.Obj
    [
      ("cores", Json.Int (Domain.recommended_domain_count ()));
      ("ocaml", Json.String Sys.ocaml_version);
      ("word_size", Json.Int Sys.word_size);
      ("os_type", Json.String Sys.os_type);
    ]

let to_json rows ckpt_rows serve_rows =
  Json.Obj
    [
      ("schema", Json.String "rcoe-bench-baseline/v4");
      ("host", host_json ());
      ("reps", Json.Int reps);
      ("ckpt", Ckpt_bench.to_json ckpt_rows);
      ("serve", serve_json serve_rows);
      ( "workloads",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.String r.r_name);
                   ( "base",
                     Json.Obj
                       [
                         ("cycles", Json.Int r.r_base_cycles);
                         ("wall_s", Json.Float r.r_base_wall);
                       ] );
                   ( "configs",
                     Json.List
                       (List.map
                          (fun c ->
                            Json.Obj
                              [
                                ("label", Json.String c.c_label);
                                ( "mode",
                                  Json.String (Config.mode_to_string c.c_mode)
                                );
                                ("replicas", Json.Int c.c_n);
                                ("cycles", Json.Int c.c_cycles);
                                ("sync_overhead", Json.Float c.c_overhead);
                                ("wall_seq_s", Json.Float c.c_wall_seq);
                                ("wall_par_s", Json.Float c.c_wall_par);
                                ("speedup", Json.Float c.c_speedup);
                                ("deterministic", Json.Bool c.c_deterministic);
                              ])
                          r.r_configs) );
                 ])
             rows) );
    ]

let print_table rows =
  let t =
    Rcoe_util.Table.create
      ~headers:
        [ "workload"; "config"; "cycles"; "overhead"; "seq wall";
          "par wall"; "speedup"; "deterministic" ]
  in
  List.iter
    (fun r ->
      Rcoe_util.Table.add_row t
        [ r.r_name; "Base"; string_of_int r.r_base_cycles; "-";
          Printf.sprintf "%.3fs" r.r_base_wall; "-"; "-"; "-" ];
      List.iter
        (fun c ->
          Rcoe_util.Table.add_row t
            [
              r.r_name; c.c_label; string_of_int c.c_cycles;
              Printf.sprintf "%+.0f%%" (100. *. c.c_overhead);
              Printf.sprintf "%.3fs" c.c_wall_seq;
              Printf.sprintf "%.3fs" c.c_wall_par;
              Printf.sprintf "%.2fx" c.c_speedup;
              (if c.c_deterministic then "yes" else "NO");
            ])
        r.r_configs)
    rows;
  Rcoe_util.Table.print t

let measure_all () =
  Printf.printf "Measuring benchmark baseline (%d reps, host cores: %d)\n%!"
    reps
    (Domain.recommended_domain_count ());
  let rows = List.map measure_workload workloads in
  print_table rows;
  let broken =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun c ->
            if c.c_deterministic then None else Some (r.r_name, c.c_label))
          r.r_configs)
      rows
  in
  if broken <> [] then begin
    List.iter
      (fun (w, c) ->
        Printf.eprintf
          "baseline: DETERMINISM FAILURE: %s %s: parallel != sequential\n" w c)
      broken;
    exit 1
  end;
  rows

let write ?(path = default_path) () =
  let rows = measure_all () in
  let ckpt_rows = Ckpt_bench.measure_all () in
  Ckpt_bench.print_table ckpt_rows;
  let serve_rows = measure_serve () in
  print_serve_table serve_rows;
  let oc = open_out path in
  output_string oc (Json.to_string (to_json rows ckpt_rows serve_rows));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let serve_table () =
  let rows = measure_serve () in
  print_serve_table rows

(* --- comparison mode ---------------------------------------------------- *)

let jfail fmt = Printf.ksprintf failwith fmt

let jmember name j =
  match Json.member name j with
  | Some v -> v
  | None -> jfail "baseline file: missing field %S" name

let jint = function Json.Int i -> i | _ -> jfail "baseline file: expected int"

let jfloat = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> jfail "baseline file: expected number"

let jstring = function
  | Json.String s -> s
  | _ -> jfail "baseline file: expected string"

let jlist = function
  | Json.List l -> l
  | _ -> jfail "baseline file: expected list"

let tolerance () =
  match Sys.getenv_opt "RCOE_BENCH_TOLERANCE" with
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. -> f
      | _ -> jfail "RCOE_BENCH_TOLERANCE must be a positive float, got %S" s)
  | None -> 0.10

let check ?(path = default_path) () =
  let committed =
    let ic =
      try open_in_bin path
      with Sys_error e ->
        Printf.eprintf
          "baseline-check: cannot open %s (%s)\n\
           run `dune exec bench/main.exe -- baseline` to create it\n"
          path e;
        exit 1
    in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match Json.parse s with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "baseline-check: %s is malformed: %s\n" path e;
        exit 1
  in
  (match jstring (jmember "schema" committed) with
  | "rcoe-bench-baseline/v4" -> ()
  | "rcoe-bench-baseline/v2" | "rcoe-bench-baseline/v3" ->
      Printf.eprintf
        "baseline-check: %s uses a pre-ingress schema (no ingress serve \
         rows)\n\
         regenerate with `dune exec bench/main.exe -- baseline`\n"
        path;
      exit 1
  | other ->
      Printf.eprintf "baseline-check: unknown schema %S in %s\n" other path;
      exit 1);
  let tol = tolerance () in
  let fresh = measure_all () in
  let fresh_ckpt = Ckpt_bench.measure_all () in
  Ckpt_bench.print_table fresh_ckpt;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let committed_wls = jlist (jmember "workloads" committed) in
  let find_wl name =
    List.find_opt
      (fun j -> jstring (jmember "name" j) = name)
      committed_wls
  in
  List.iter
    (fun r ->
      match find_wl r.r_name with
      | None -> fail "%s: not present in committed baseline" r.r_name
      | Some j ->
          let base = jmember "base" j in
          if jint (jmember "cycles" base) <> r.r_base_cycles then
            fail "%s Base: cycles %d != committed %d" r.r_name r.r_base_cycles
              (jint (jmember "cycles" base));
          let committed_cfgs = jlist (jmember "configs" j) in
          List.iter
            (fun c ->
              match
                List.find_opt
                  (fun cj -> jstring (jmember "label" cj) = c.c_label)
                  committed_cfgs
              with
              | None ->
                  fail "%s %s: not present in committed baseline" r.r_name
                    c.c_label
              | Some cj ->
                  if jint (jmember "cycles" cj) <> c.c_cycles then
                    fail "%s %s: cycles %d != committed %d" r.r_name c.c_label
                      c.c_cycles
                      (jint (jmember "cycles" cj));
                  let wall_check what fresh_w committed_w =
                    if fresh_w > committed_w *. (1. +. tol) then
                      fail "%s %s: %s wall time %.3fs regressed >%.0f%% over \
                            committed %.3fs"
                        r.r_name c.c_label what fresh_w (100. *. tol)
                        committed_w
                  in
                  wall_check "sequential" c.c_wall_seq
                    (jfloat (jmember "wall_seq_s" cj));
                  wall_check "parallel" c.c_wall_par
                    (jfloat (jmember "wall_par_s" cj)))
            r.r_configs)
    fresh;
  (* Checkpoint-capture rows: simulated quantities exactly, the
     incremental capture wall within the same tolerance. *)
  let committed_ckpt = jlist (jmember "ckpt" committed) in
  List.iter
    (fun (r : Ckpt_bench.row) ->
      match
        List.find_opt
          (fun j -> jstring (jmember "name" j) = r.Ckpt_bench.k_name)
          committed_ckpt
      with
      | None ->
          fail "ckpt %s: not present in committed baseline"
            r.Ckpt_bench.k_name
      | Some j ->
          let full = jmember "full" j and incr = jmember "incremental" j in
          let exact what fresh_v committed_v =
            if fresh_v <> committed_v then
              fail "ckpt %s: %s %d != committed %d" r.Ckpt_bench.k_name what
                fresh_v committed_v
          in
          exact "captures" r.Ckpt_bench.k_captures (jint (jmember "captures" j));
          exact "full words" r.Ckpt_bench.k_full_words
            (jint (jmember "words" full));
          exact "incremental words" r.Ckpt_bench.k_incr_words
            (jint (jmember "words" incr));
          exact "full cost_cycles" r.Ckpt_bench.k_full_cost
            (jint (jmember "cost_cycles" full));
          exact "incremental cost_cycles" r.Ckpt_bench.k_incr_cost
            (jint (jmember "cost_cycles" incr));
          exact "full engine_checkpoints" r.Ckpt_bench.k_full_ckpts
            (jint (jmember "engine_checkpoints" full));
          exact "incremental engine_checkpoints" r.Ckpt_bench.k_incr_ckpts
            (jint (jmember "engine_checkpoints" incr));
          let committed_wall = jfloat (jmember "wall_s" incr) in
          if r.Ckpt_bench.k_incr_wall > committed_wall *. (1. +. tol) then
            fail
              "ckpt %s: incremental capture wall %.4fs regressed >%.0f%% \
               over committed %.4fs"
              r.Ckpt_bench.k_name r.Ckpt_bench.k_incr_wall (100. *. tol)
              committed_wall)
    fresh_ckpt;
  (* Serving rows: simulated quantities exactly, walls within the
     tolerance. *)
  let fresh_serve = measure_serve () in
  print_serve_table fresh_serve;
  let committed_serve = jlist (jmember "serve" committed) in
  List.iter
    (fun s ->
      match
        List.find_opt
          (fun j -> jstring (jmember "name" j) = s.s_name)
          committed_serve
      with
      | None -> fail "serve %s: not present in committed baseline" s.s_name
      | Some j ->
          let exact what fresh_v committed_v =
            if fresh_v <> committed_v then
              fail "serve %s: %s %d != committed %d" s.s_name what fresh_v
                committed_v
          in
          exact "requests" s.s_requests (jint (jmember "requests" j));
          exact "cycles" s.s_cycles (jint (jmember "cycles" j));
          exact "completed" s.s_completed (jint (jmember "completed" j));
          exact "digest" s.s_digest (jint (jmember "digest" j));
          exact "sorted_digest" s.s_sorted_digest
            (jint (jmember "sorted_digest" j));
          exact "rollbacks" s.s_rollbacks (jint (jmember "rollbacks" j));
          exact "corrupted" s.s_corrupted (jint (jmember "corrupted" j));
          exact "ingress_checked" s.s_checked
            (jint (jmember "ingress_checked" j));
          exact "ingress_dropped" s.s_dropped
            (jint (jmember "ingress_dropped" j));
          exact "redelivered" s.s_redelivered
            (jint (jmember "redelivered" j));
          let wall_check what fresh_w committed_w =
            if fresh_w > committed_w *. (1. +. tol) then
              fail
                "serve %s: %s wall time %.3fs regressed >%.0f%% over \
                 committed %.3fs"
                s.s_name what fresh_w (100. *. tol) committed_w
          in
          wall_check "sequential" s.s_wall_seq
            (jfloat (jmember "wall_seq_s" j));
          wall_check "parallel" s.s_wall_par (jfloat (jmember "wall_par_s" j)))
    fresh_serve;
  match !failures with
  | [] ->
      Printf.printf "baseline-check: ok (tolerance %.0f%%, vs %s)\n"
        (100. *. tol) path
  | fs ->
      List.iter (fun f -> Printf.eprintf "baseline-check: %s\n" f)
        (List.rev fs);
      exit 1
