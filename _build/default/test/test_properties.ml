(* Property tests on the replication engine's core data structures, plus
   smoke coverage of the experiment-reproduction entry points. *)

open Rcoe_core
open Rcoe_machine
open Rcoe_kernel

(* --- Clock laws ----------------------------------------------------------- *)

let gen_clock =
  QCheck.Gen.(
    let* count = int_range 0 1000 in
    let* kind = int_range 0 3 in
    if kind = 0 then return (Clock.in_kernel ~count)
    else
      let* b = int_range 0 500 in
      let* ip = int_range 0 300 in
      return { Clock.count; pos = Clock.At_user { branches_adj = b; ip } })

let arb_clock = QCheck.make gen_clock

let qcheck_clock_total_order =
  QCheck.Test.make ~name:"clock compare is a total order (antisymmetry)"
    ~count:500 (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      let ab = Clock.compare a b and ba = Clock.compare b a in
      (ab = 0 && ba = 0) || (ab > 0 && ba < 0) || (ab < 0 && ba > 0))

let qcheck_clock_transitive =
  QCheck.Test.make ~name:"clock compare is transitive" ~count:500
    (QCheck.triple arb_clock arb_clock arb_clock) (fun (a, b, c) ->
      if Clock.compare a b <= 0 && Clock.compare b c <= 0 then
        Clock.compare a c <= 0
      else true)

let qcheck_clock_encode_order_preserving =
  QCheck.Test.make ~name:"encode/decode preserves ordering" ~count:500
    (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      let a' = Clock.decode (Clock.encode a)
      and b' = Clock.decode (Clock.encode b) in
      compare (Clock.compare a b) 0 = compare (Clock.compare a' b') 0)

(* --- Vote robustness -------------------------------------------------------- *)

let mk_vote_env n =
  let lay = Layout.compute ~nreplicas:n ~user_words:1024 in
  (Mem.create lay.Layout.total_words, lay.Layout.shared)

let qcheck_vote_never_convicts_healthy_majority =
  (* Whatever one replica's corrupt signature is, the vote must convict
     it or (never) a healthy one. *)
  QCheck.Test.make ~name:"vote never convicts a healthy replica" ~count:300
    QCheck.(triple (int_bound 4) (int_bound 100000) (int_bound 100000))
    (fun (faulty_mod, good, bad) ->
      QCheck.assume (good <> bad);
      let n = 5 in
      let faulty = faulty_mod mod n in
      let mem, sh = mk_vote_env n in
      for r = 0 to n - 1 do
        Vote.publish_signature mem sh ~rid:r
          (if r = faulty then (1, bad, bad) else (1, good, good))
      done;
      match Vote.run mem sh ~live:[ 0; 1; 2; 3; 4 ] with
      | Vote.Faulty f -> f = faulty
      | Vote.No_consensus -> false)

let qcheck_vote_two_faulty_no_false_conviction =
  (* With two differently-corrupt replicas out of four, a majority of two
     healthy replicas is not enough for the Listing-5 rule: it must not
     convict a healthy replica (no-consensus or one of the faulty two). *)
  QCheck.Test.make ~name:"two faulty replicas never convict a healthy one"
    ~count:300
    QCheck.(pair (int_bound 100000) (pair (int_bound 100000) (int_bound 100000)))
    (fun (good, (bad1, bad2)) ->
      QCheck.assume (good <> bad1 && good <> bad2 && bad1 <> bad2);
      let mem, sh = mk_vote_env 4 in
      Vote.publish_signature mem sh ~rid:0 (1, good, good);
      Vote.publish_signature mem sh ~rid:1 (1, good, good);
      Vote.publish_signature mem sh ~rid:2 (1, bad1, bad1);
      Vote.publish_signature mem sh ~rid:3 (1, bad2, bad2);
      match Vote.run mem sh ~live:[ 0; 1; 2; 3 ] with
      | Vote.Faulty f -> f = 2 || f = 3
      | Vote.No_consensus -> true)

let qcheck_signature_order_sensitivity =
  QCheck.Test.make ~name:"in-memory signature is order sensitive" ~count:300
    QCheck.(list_of_size Gen.(int_range 2 12) (int_bound 0xFFFF))
    (fun ws ->
      let distinct = List.sort_uniq compare ws in
      QCheck.assume (List.length distinct >= 2);
      let mem = Mem.create 16 in
      Signature.reset mem ~base:0;
      Signature.add_words mem ~base:0 (Array.of_list ws);
      let fwd = Signature.read mem ~base:0 in
      Signature.reset mem ~base:0;
      Signature.add_words mem ~base:0 (Array.of_list (List.rev ws));
      let rev = Signature.read mem ~base:0 in
      List.rev ws = ws || not (Signature.equal3 fwd rev))

(* --- layout properties ------------------------------------------------------- *)

let qcheck_layout_no_overlap =
  QCheck.Test.make ~name:"layout regions never overlap" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1024 65536))
    (fun (n, user_words) ->
      let lay = Layout.compute ~nreplicas:n ~user_words in
      let regions =
        List.init n (fun i ->
            let p = lay.Layout.partitions.(i) in
            (p.Layout.p_base, p.Layout.p_base + p.Layout.p_words))
        @ [
            ( lay.Layout.shared.Layout.s_base,
              lay.Layout.shared.Layout.s_base + lay.Layout.shared.Layout.s_words );
            (lay.Layout.dma_base, lay.Layout.dma_base + lay.Layout.dma_words);
          ]
      in
      let sorted = List.sort compare regions in
      let rec ok = function
        | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && ok rest
        | _ -> true
      in
      ok sorted
      && List.for_all (fun (_, e) -> e <= lay.Layout.total_words) sorted)

(* --- smoke coverage of the experiment entry points --------------------------- *)

let test_experiment_entry_points_smoke () =
  (* Tiny-size runs of the reproduction functions; output goes to stdout
     and is not asserted beyond "does not raise / does not halt". *)
  Rcoe_harness.Perf_experiments.e1_datarace ~runs:2 ();
  Rcoe_harness.Perf_experiments.table5 ~runs:1 ();
  Rcoe_harness.Perf_experiments.table10 ~runs:1 ();
  Rcoe_harness.Fault_experiments.table8 ~trials:3 ();
  Rcoe_harness.Fault_experiments.detection_latency ~runs:1 ()

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_clock_total_order;
    QCheck_alcotest.to_alcotest qcheck_clock_transitive;
    QCheck_alcotest.to_alcotest qcheck_clock_encode_order_preserving;
    QCheck_alcotest.to_alcotest qcheck_vote_never_convicts_healthy_majority;
    QCheck_alcotest.to_alcotest qcheck_vote_two_faulty_no_false_conviction;
    QCheck_alcotest.to_alcotest qcheck_signature_order_sensitivity;
    QCheck_alcotest.to_alcotest qcheck_layout_no_overlap;
    Alcotest.test_case "experiment entry points (smoke)" `Slow
      test_experiment_entry_points_smoke;
  ]
