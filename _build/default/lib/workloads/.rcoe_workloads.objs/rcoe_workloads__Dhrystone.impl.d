lib/workloads/dhrystone.ml: Array Asm Instr Rcoe_isa Reg Wl
