lib/kernel/layout.mli:
