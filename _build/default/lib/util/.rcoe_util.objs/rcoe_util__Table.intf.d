lib/util/table.mli:
