(** SPLASH-2-like scientific mini-kernels (paper Table IV).

    Fourteen kernels mirroring the SPLASH-2 suite's names and — what
    actually determines CC-RCoE overhead — its spread of loop structures:
    CHOLESKY/LU spend their time in very tight inner loops (high
    catch-up cost, the paper sees 6–12x), OCEAN/FFT in moderate loops
    (~2–3x), and RAYTRACE/RADIOSITY in long loop bodies (~1.1x). Each
    kernel performs a genuine (small-scale) computation and publishes a
    result block through [FT_Add_Trace] before exiting.

    The paper runs these inside a Linux VM under CC-D; the harness uses
    the [vm] configuration for the same effect. *)

val names : string list
(** The 14 kernel names, in the paper's order. *)

val mt_kernels : string list
(** Kernels with an NPROC=2 variant: the paper runs the suite with two
    threads; the kernels whose outer loop partitions by index (disjoint
    writes, read-only shared inputs) are parallelised here with two
    spawned worker threads and a join. *)

val program : string -> ?scale:int -> ?nproc:int -> branch_count:bool ->
  unit -> Rcoe_isa.Program.t
(** [program name] builds the kernel. Raises [Invalid_argument] for an
    unknown name, for [nproc] other than 1 or 2, or for [nproc = 2] on a
    kernel without an NPROC=2 variant. [scale] multiplies the iteration
    counts (default 1). *)

val result_label : string
