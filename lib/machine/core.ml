open Rcoe_util

type fault =
  | Unmapped of { vaddr : int; write : bool }
  | Write_protect of int
  | Division_by_zero
  | Bad_ip of int
  | Phys_abort of int

type event =
  | Ev_halt
  | Ev_syscall of int
  | Ev_fault of fault
  | Ev_breakpoint

type t = {
  id : int;
  mutable ip : int;
  regs : int array;
  fregs : float array;
  mutable stall : int;
  mutable cycles : int;
  mutable instret : int;
  mutable hw_branches : int;
  mutable last_was_cntinc : bool;
  mutable excl_armed : bool;
  mutable excl_addr : int;
  mutable bp : int option;
  mutable bp_suppress : bool;
  mutable halted : bool;
  mutable bus_wait : int;
  jitter : Rng.t;
}

type env = {
  code : Rcoe_isa.Instr.t array;
  mem : Mem.t;
  translate : vaddr:int -> write:bool -> Page_table.resolution;
  dev_read : int -> int -> int;
  dev_write : int -> int -> int -> unit;
  bus : Bus.t;
  profile : Arch.profile;
  trace : Rcoe_obs.Trace.t;
}

type step_result = Ran | Stalled | Event of event

let create ~id ~jitter_seed =
  {
    id;
    ip = 0;
    regs = Array.make Rcoe_isa.Reg.count 0;
    fregs = Array.make Rcoe_isa.Reg.fcount 0.0;
    stall = 0;
    cycles = 0;
    instret = 0;
    hw_branches = 0;
    last_was_cntinc = false;
    excl_armed = false;
    excl_addr = 0;
    bp = None;
    bp_suppress = false;
    halted = false;
    bus_wait = 0;
    jitter = Rng.create jitter_seed;
  }

let branch_count t (p : Arch.profile) =
  match p.count_mode with
  | Arch.Hardware -> t.hw_branches
  | Arch.Compiler_assisted -> t.regs.(Rcoe_isa.Reg.index Rcoe_isa.Reg.branch_counter)

let set_branch_count t (p : Arch.profile) v =
  match p.count_mode with
  | Arch.Hardware -> t.hw_branches <- v
  | Arch.Compiler_assisted ->
      t.regs.(Rcoe_isa.Reg.index Rcoe_isa.Reg.branch_counter) <- v

let clear_exclusive t = t.excl_armed <- false

let add_stall t n = t.stall <- t.stall + n

let rep_in_progress t env =
  t.ip >= 0
  && t.ip < Array.length env.code
  && (match env.code.(t.ip) with Rcoe_isa.Instr.Rep_movs -> true | _ -> false)

(* --- memory access helpers ------------------------------------------- *)

exception Take_fault of fault
exception Bus_busy

let resolve env ~vaddr ~write =
  match env.translate ~vaddr ~write with
  | Page_table.Phys p -> `Phys p
  | Page_table.Device (d, off) -> `Dev (d, off)
  | Page_table.No_mapping -> raise (Take_fault (Unmapped { vaddr; write }))
  | Page_table.Not_writable -> raise (Take_fault (Write_protect vaddr))

let acquire_bus env n = if not (Bus.try_acquire env.bus n) then raise Bus_busy

let load t env vaddr =
  match resolve env ~vaddr ~write:false with
  | `Phys p -> (
      acquire_bus env 1;
      t.stall <- t.stall + env.profile.mem_extra_cycles;
      try Mem.read env.mem p with Mem.Abort a -> raise (Take_fault (Phys_abort a)))
  | `Dev (d, off) -> env.dev_read d off

let store t env vaddr v =
  match resolve env ~vaddr ~write:true with
  | `Phys p -> (
      acquire_bus env 1;
      t.stall <- t.stall + env.profile.mem_extra_cycles;
      try Mem.write env.mem p v with Mem.Abort a -> raise (Take_fault (Phys_abort a)))
  | `Dev (d, off) -> env.dev_write d off v

(* --- ALU -------------------------------------------------------------- *)

let shift_amount n = n land 1023

let alu op a b =
  let open Rcoe_isa.Instr in
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise (Take_fault Division_by_zero) else a / b
  | Rem -> if b = 0 then raise (Take_fault Division_by_zero) else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl ->
      let s = shift_amount b in
      if s >= 63 then 0 else a lsl s
  | Shr ->
      let s = shift_amount b in
      if s >= 63 then 0 else a lsr s
  | Asr ->
      let s = shift_amount b in
      a asr min s 62

let falu op a b =
  let open Rcoe_isa.Instr in
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b

let funop op a =
  let open Rcoe_isa.Instr in
  match op with
  | Fmov -> a
  | Fneg -> -.a
  | Fabs -> Float.abs a
  | Fsqrt -> sqrt a

(* --- stepping --------------------------------------------------------- *)

let reg = Rcoe_isa.Reg.index
let sp_idx = Rcoe_isa.Reg.index Rcoe_isa.Reg.sp
let lr_idx = Rcoe_isa.Reg.index Rcoe_isa.Reg.lr
let cnt_idx = Rcoe_isa.Reg.index Rcoe_isa.Reg.branch_counter

let operand t (o : Rcoe_isa.Instr.operand) =
  match o with Reg r -> t.regs.(reg r) | Imm i -> i

let target_addr instr (tg : Rcoe_isa.Instr.target) =
  match tg with
  | Abs a -> a
  | Lbl l ->
      invalid_arg
        (Printf.sprintf "Core: unresolved label %s in %s" l
           (Rcoe_isa.Instr.to_string instr))

let count_hw_branch t env =
  match env.profile.count_mode with
  | Arch.Hardware -> t.hw_branches <- t.hw_branches + 1
  | Arch.Compiler_assisted -> ()

(* Execute exactly one instruction (or one word of a rep-string).
   Raises Take_fault/Bus_busy. Returns an event for traps. *)
let exec t env instr : event option =
  let open Rcoe_isa.Instr in
  let fregs = t.fregs and regs = t.regs in
  let fidx = Rcoe_isa.Reg.findex in
  let retire () =
    t.ip <- t.ip + 1;
    t.instret <- t.instret + 1;
    t.last_was_cntinc <- false
  in
  match instr with
  | Nop ->
      retire ();
      None
  | Halt -> Some Ev_halt
  | Mov (rd, o) ->
      regs.(reg rd) <- operand t o;
      retire ();
      None
  | La (rd, l) -> invalid_arg ("Core: unresolved data label " ^ l ^ " for " ^ Rcoe_isa.Reg.to_string rd)
  | Alu (op, rd, rs, o) ->
      regs.(reg rd) <- alu op regs.(reg rs) (operand t o);
      retire ();
      None
  | Not (rd, rs) ->
      regs.(reg rd) <- lnot regs.(reg rs);
      retire ();
      None
  | Ld (rd, rs, off) ->
      regs.(reg rd) <- load t env (regs.(reg rs) + off);
      retire ();
      None
  | St (rbase, rs, off) ->
      store t env (regs.(reg rbase) + off) regs.(reg rs);
      retire ();
      None
  | Push r ->
      let nsp = regs.(sp_idx) - 1 in
      store t env nsp regs.(reg r);
      regs.(sp_idx) <- nsp;
      retire ();
      None
  | Pop r ->
      let v = load t env regs.(sp_idx) in
      regs.(reg r) <- v;
      regs.(sp_idx) <- regs.(sp_idx) + 1;
      retire ();
      None
  | B (c, r, o, tg) ->
      count_hw_branch t env;
      if eval_cond c regs.(reg r) (operand t o) then begin
        t.ip <- target_addr instr tg;
        t.instret <- t.instret + 1;
        t.last_was_cntinc <- false
      end
      else retire ();
      None
  | Jmp tg ->
      count_hw_branch t env;
      t.ip <- target_addr instr tg;
      t.instret <- t.instret + 1;
      t.last_was_cntinc <- false;
      None
  | Jal tg ->
      count_hw_branch t env;
      regs.(lr_idx) <- t.ip + 1;
      t.ip <- target_addr instr tg;
      t.instret <- t.instret + 1;
      t.last_was_cntinc <- false;
      None
  | Jr r ->
      count_hw_branch t env;
      t.ip <- regs.(reg r);
      t.instret <- t.instret + 1;
      t.last_was_cntinc <- false;
      None
  | Ret ->
      count_hw_branch t env;
      t.ip <- regs.(lr_idx);
      t.instret <- t.instret + 1;
      t.last_was_cntinc <- false;
      None
  | Syscall n ->
      retire ();
      Some (Ev_syscall n)
  | Rep_movs ->
      (* One word per cycle; registers stay architecturally consistent so
         the copy can be preempted and resumed. *)
      if regs.(reg R2) <= 0 then begin
        retire ();
        None
      end
      else begin
        let src = regs.(reg R1) and dst = regs.(reg R0) in
        let v =
          match resolve env ~vaddr:src ~write:false with
          | `Phys p -> (
              acquire_bus env 2;
              t.stall <- t.stall + env.profile.mem_extra_cycles;
              try Mem.read env.mem p
              with Mem.Abort a -> raise (Take_fault (Phys_abort a)))
          | `Dev (d, off) -> env.dev_read d off
        in
        (match resolve env ~vaddr:dst ~write:true with
        | `Phys p -> (
            try Mem.write env.mem p v
            with Mem.Abort a -> raise (Take_fault (Phys_abort a)))
        | `Dev (d, off) -> env.dev_write d off v);
        regs.(reg R0) <- dst + 1;
        regs.(reg R1) <- src + 1;
        regs.(reg R2) <- regs.(reg R2) - 1;
        if regs.(reg R2) = 0 then retire ();
        None
      end
  | Ldex (rd, rs) ->
      let a = regs.(reg rs) in
      regs.(reg rd) <- load t env a;
      t.excl_armed <- true;
      t.excl_addr <- a;
      retire ();
      None
  | Stex (rres, rval, raddr) ->
      let a = regs.(reg raddr) in
      if t.excl_armed && t.excl_addr = a then begin
        store t env a regs.(reg rval);
        regs.(reg rres) <- 0
      end
      else regs.(reg rres) <- 1;
      t.excl_armed <- false;
      retire ();
      None
  | Atomic_add (rd, raddr, o) ->
      let a = regs.(reg raddr) in
      let old = load t env a in
      store t env a (old + operand t o);
      regs.(reg rd) <- old;
      retire ();
      None
  | Cas (rd, raddr, rexp, rnew) ->
      let a = regs.(reg raddr) in
      let old = load t env a in
      if old = regs.(reg rexp) then store t env a regs.(reg rnew);
      regs.(reg rd) <- old;
      retire ();
      None
  | Cntinc ->
      regs.(cnt_idx) <- regs.(cnt_idx) + 1;
      t.ip <- t.ip + 1;
      t.instret <- t.instret + 1;
      t.last_was_cntinc <- true;
      None
  | Falu (op, fd, fa, fb) ->
      fregs.(fidx fd) <- falu op fregs.(fidx fa) fregs.(fidx fb);
      retire ();
      None
  | Funop (op, fd, fs) ->
      fregs.(fidx fd) <- funop op fregs.(fidx fs);
      retire ();
      None
  | Fldi (fd, x) ->
      fregs.(fidx fd) <- x;
      retire ();
      None
  | Fld (fd, rs, off) ->
      let w = load t env (regs.(reg rs) + off) in
      fregs.(fidx fd) <- Rcoe_isa.Program.word_to_float w;
      retire ();
      None
  | Fst (fs, rbase, off) ->
      store t env
        (regs.(reg rbase) + off)
        (Rcoe_isa.Program.float_to_word fregs.(fidx fs));
      retire ();
      None
  | Fb (c, fa, fb, tg) ->
      count_hw_branch t env;
      if eval_fcond c fregs.(fidx fa) fregs.(fidx fb) then begin
        t.ip <- target_addr instr tg;
        t.instret <- t.instret + 1;
        t.last_was_cntinc <- false
      end
      else retire ();
      None
  | Itof (fd, rs) ->
      fregs.(fidx fd) <- float_of_int regs.(reg rs);
      retire ();
      None
  | Ftoi (rd, fs) ->
      regs.(reg rd) <- int_of_float fregs.(fidx fs);
      retire ();
      None

(* Flush a completed run of bus-contention stalls as one trace span
   ending at the current cycle. *)
let flush_bus_wait t env =
  if t.bus_wait > 0 then begin
    Rcoe_obs.Trace.bus_stall env.trace ~rid:t.id ~cycles:t.bus_wait;
    t.bus_wait <- 0
  end

let step t env =
  if t.halted then Event Ev_halt
  else begin
    t.cycles <- t.cycles + 1;
    if t.stall > 0 then begin
      t.stall <- t.stall - 1;
      Stalled
    end
    else begin
      (* Re-arm the resume flag once execution has left the breakpointed
         address. *)
      (match t.bp with
      | Some bp when t.bp_suppress && t.ip <> bp -> t.bp_suppress <- false
      | _ -> ());
      match t.bp with
      | Some bp when bp = t.ip && not t.bp_suppress ->
          Rcoe_obs.Trace.bp_fire env.trace ~rid:t.id;
          Event Ev_breakpoint
      | _ ->
          if t.ip < 0 || t.ip >= Array.length env.code then
            Event (Ev_fault (Bad_ip t.ip))
          else begin
            let instr = env.code.(t.ip) in
            match exec t env instr with
            | exception Take_fault f ->
                t.bus_wait <- 0;
                Event (Ev_fault f)
            | exception Bus_busy ->
                t.bus_wait <- t.bus_wait + 1;
                Stalled
            | Some ev ->
                flush_bus_wait t env;
                Event ev
            | None ->
                flush_bus_wait t env;
                if
                  env.profile.jitter_p > 0.0
                  && Rng.float t.jitter 1.0 < env.profile.jitter_p
                then t.stall <- t.stall + env.profile.jitter_cycles;
                Ran
          end
    end
  end
