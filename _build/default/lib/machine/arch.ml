type t = X86 | Arm

type count_mode = Hardware | Compiler_assisted

type profile = {
  arch : t;
  freq_mhz : int;
  syscall_cost : int;
  fault_cost : int;
  irq_cost : int;
  ipi_latency : int;
  debug_exception_cost : int;
  breakpoint_set_cost : int;
  vm_exit_cost : int;
  rep_walk_cost : int;
  mem_extra_cycles : int;
  bus_rate : float;
  jitter_p : float;
  jitter_cycles : int;
  count_mode : count_mode;
  has_resume_flag : bool;
  pt_spare_bit : bool;
}

let x86 =
  {
    arch = X86;
    freq_mhz = 3400;
    syscall_cost = 150;
    fault_cost = 200;
    irq_cost = 300;
    ipi_latency = 200;
    debug_exception_cost = 300;
    breakpoint_set_cost = 40;
    vm_exit_cost = 1400;
    rep_walk_cost = 400;
    mem_extra_cycles = 0;
    bus_rate = 2.0;
    jitter_p = 0.012;
    jitter_cycles = 12;
    count_mode = Hardware;
    has_resume_flag = true;
    pt_spare_bit = true;
  }

let arm =
  {
    arch = Arm;
    freq_mhz = 1000;
    syscall_cost = 260;
    fault_cost = 320;
    irq_cost = 450;
    ipi_latency = 350;
    debug_exception_cost = 520;
    breakpoint_set_cost = 60;
    vm_exit_cost = 0;
    (* seL4 on this Arm platform does not support hypervisor mode. *)
    rep_walk_cost = 0;
    mem_extra_cycles = 1;
    bus_rate = 1.6;
    jitter_p = 0.013;
    jitter_cycles = 13;
    count_mode = Compiler_assisted;
    has_resume_flag = false;
    pt_spare_bit = false;
  }

let profile_of = function X86 -> x86 | Arm -> arm

let to_string = function X86 -> "x86" | Arm -> "Arm"

let cycles_to_us p c = float_of_int c /. float_of_int p.freq_mhz
