(** Named counter/gauge/histogram registry.

    Replaces the hand-maintained ad-hoc stats records: subsystems
    register named instruments once at construction time and bump them
    on the hot path; the harness reads everything back by name or as a
    rendered table. Registration of a duplicate name raises — two
    subsystems silently sharing a counter is a bug, and the [@trace]
    CI alias relies on this check. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Registration} — raises [Invalid_argument] on a duplicate name. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : ?buckets:float list -> t -> string -> histogram
(** [buckets] are the upper bounds handed to {!Rcoe_util.Stats.histogram}
    when rendering; sample storage is exact regardless. *)

val hdr : t -> string -> Hdr.t
(** Bounded-memory log-linear latency histogram ({!Hdr}); preferred over
    [histogram] for per-request latency recording, whose sample count
    grows with the run length. *)

val gauge_or : t -> string -> gauge
(** Find-or-register: returns the existing gauge of that name, or
    registers a fresh one. For refresh-on-read metrics (the [net.] and
    [trace.] families) that are set every time the registry is read. *)

(** {2 Hot path} *)

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {2 Reading} *)

val count : counter -> int
val value : gauge -> float
val samples : histogram -> float list
(** Oldest first. *)

val buckets : histogram -> float list option
val names : t -> string list
(** Registration order. *)

val find_counter : t -> string -> counter option
val find_gauge : t -> string -> gauge option
val find_histogram : t -> string -> histogram option
val find_hdr : t -> string -> Hdr.t option

val to_table : t -> Rcoe_util.Table.t
(** One row per instrument: name, kind, count/value/n, and for
    histograms mean, p50, p95 and max from {!Rcoe_util.Stats}. *)
