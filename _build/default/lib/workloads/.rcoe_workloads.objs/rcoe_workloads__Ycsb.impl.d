lib/workloads/ycsb.ml: Array Hashtbl Kvstore Rcoe_checksum Rcoe_util Rng
