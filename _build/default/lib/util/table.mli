(** Plain-text table rendering for the benchmark harness output.

    Produces aligned, boxless tables so that `bench/main.exe` output can be
    compared side-by-side with the paper's tables. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** Rows may be shorter than the header row; missing cells render empty.
    Raises [Invalid_argument] if a row is longer than the header row. *)

val add_separator : t -> unit

val render : t -> string
(** Render with each column padded to its widest cell; first column
    left-aligned, remaining columns right-aligned (numeric convention). *)

val print : t -> unit
