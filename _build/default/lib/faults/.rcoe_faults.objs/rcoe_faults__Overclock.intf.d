lib/faults/overclock.mli: Rcoe_kernel Rcoe_machine
