(** Log-linear-bucketed latency histogram (HdrHistogram-style).

    Records non-negative integer values (cycle latencies) into a fixed
    array of buckets: values below [256] are stored exactly, and each
    further power-of-two magnitude is split into 128 linear sub-buckets,
    bounding the relative quantile error at under 0.5% while using a
    constant ~7k-word footprint regardless of sample count. This
    replaces the exact-sample-list [Util.Stats] path for latency
    recording, whose memory grows with the run length.

    Histograms are mergeable: replicas or domains can record privately
    and combine afterwards; {!merge} is associative and commutative on
    bucket counts, totals, sums, and min/max. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one value. Negative values clamp to 0; any value up to
    [max_int] lands in a valid bucket (no overflow bucket needed). *)

val record_n : t -> int -> n:int -> unit
(** Record the same value [n] times (O(1)). *)

(** {2 Reading} *)

val count : t -> int
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
(** Exact maximum recorded value; 0 when empty. *)

val sum : t -> int
val mean : t -> float

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0, 1]: smallest bucket representative
    covering rank [ceil (q * count)]. Representatives are bucket
    midpoints clamped into [[min_value, max_value]], so degenerate
    distributions report exactly. [q >= 1.0] returns the exact maximum.
    0 when empty. *)

val percentile : t -> float -> int
(** [percentile t p] = [quantile t (p /. 100.)]. *)

(** {2 Merging} *)

val merge_into : into:t -> t -> unit
val merge : t -> t -> t
(** Pure combination of two histograms; inputs are unchanged. *)

(** {2 Export} *)

val fold_nonzero : (acc:'a -> lower:int -> upper:int -> count:int -> 'a) -> 'a -> t -> 'a
(** Fold over populated buckets in increasing value order. [lower] is
    inclusive, [upper] exclusive. *)

val to_json : t -> Json.t
(** Object with [count], [min], [max], [mean], [p50], [p90], [p99],
    [p999]. *)

val summary : t -> string
(** One-line [count/p50/p99/p999/max] rendering for tables and logs. *)
