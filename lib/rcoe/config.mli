(** Replication configuration.

    The paper's design space: coupling mode (none / loosely / closely
    coupled), redundancy level (DMR / TMR), architecture profile,
    signature effort (the N / A / S trade-off of Section V-B),
    virtualisation, and error-masking options. *)

type mode = Base | LC | CC

type sync_level =
  | Sync_none  (** "N": synchronise on I/O only. *)
  | Sync_args  (** "A": add syscall number and arguments to the
                   signature (the paper's default). *)
  | Sync_vote  (** "S": additionally vote on every system call. *)

(** Execution engine for {!System.run}. Both engines compute the same
    simulation: [Parallel] is required to be bit-for-bit identical to
    [Sequential] — same cycle counts, signatures, votes, outcomes,
    metrics, and cycle-stamped trace events — it only changes which host
    domain steps each replica between sync points. *)
type engine =
  | Sequential  (** Step replicas round-robin on the calling domain. *)
  | Parallel
      (** Step each live replica's partition on its own [Domain.t]
          between sync points; barriers, voting, IPIs, and all shared
          machine state stay on the orchestrating domain. *)

(** Execution backend for every replica core (see
    {!Rcoe_machine.Blockc}). Both backends compute the same simulation:
    [Blocks] is required to be bit-for-bit and cycle-for-cycle identical
    to [Interp] — same cycle counts, signatures, votes, outcomes,
    breakpoint/IRQ delivery points, trace events, and dirty bits — it
    only removes the per-cycle decode/dispatch work. The interpreter is
    the oracle; [test/test_exec_blocks.ml] and the [bench exec] baseline
    rows hold the two identical. Orthogonal to {!engine}: either backend
    composes with either engine. *)
type exec_backend =
  | Interp  (** Decode every instruction on every cycle ([Core.step]). *)
  | Blocks
      (** Pre-decode each code page once into closures with operands
          resolved; invalidated on self-modifying patches. *)

(** How divergence is detected (the two ends of the paper's sync-cost
    trade-off curve, the second populated by RepTFD-style replay). *)
type detection =
  | Lockstep
      (** Replicas synchronise and vote at every round — detection is
          immediate, sync cost sits on the critical path of every
          redundant cycle. The default; all replicated modes use it. *)
  | Replay
      (** An unreplicated primary (mode [Base]) runs ahead at native
          speed, cutting its execution into chunks at preemption-tick
          boundaries. Each chunk is a (delta-checkpoint, input-log)
          pair pushed into a bounded queue; checker [Domain.t]s restore
          the chunk's start state into a shadow machine, replay the
          logged host inputs, and compare end-of-chunk Fletcher
          signatures. A mismatch rolls the primary back to the chunk's
          start checkpoint via the existing budgeted rollback path.
          Sync overhead ~0; detection lag is bounded by
          [replay_chunk_ticks * tick_interval * replay_queue_depth].
          See {!Engine_replay}. *)

(** How {!checkpoint_every} captures state. *)
type checkpoint_mode =
  | Full  (** Copy every live partition + shared + DMA outright. *)
  | Incremental
      (** Delta snapshots over {!Rcoe_machine.Mem}'s per-page write
          tracking: copy only pages dirtied since the previous capture,
          O(dirty words) per checkpoint. Restores are bit-for-bit
          identical to [Full] — the chain is reconstructed down to the
          ring's base image. The default; [Full] is kept for
          differential testing and as the conservative fallback. *)

type t = {
  engine : engine;  (** Default [Sequential]. See {!parallel_ineligibility}. *)
  mode : mode;
  nreplicas : int;  (** 1 for [Base]; 2 (DMR) or 3+ (TMR) otherwise. *)
  arch : Rcoe_machine.Arch.t;
  sync_level : sync_level;
  vm : bool;  (** Run the workload as a guest: kernel crossings and debug
                  exceptions pay VM-exit costs (x86 only, like the
                  paper). *)
  tick_interval : int;  (** Cycles between synchronized preemption ticks. *)
  barrier_timeout : int;  (** Spin budget before declaring divergence. *)
  user_words : int;  (** User-frame area per replica partition. *)
  seed : int;
  exception_barriers : bool;
      (** Catch kernel data aborts with barriers (the Arm configuration
          of Table VII) instead of letting them become uncontrolled
          kernel exceptions. *)
  masking : bool;  (** Enable TMR->DMR downgrade on signature mismatch. *)
  timeout_masking : bool;
      (** Extension (paper Section IV-A calls it "not hard to lift"):
          also downgrade on a barrier timeout by shutting down the one
          straggling replica, instead of halting. Requires [masking]. *)
  fast_catchup : bool;
      (** Extension (paper Section VI): when a catching-up CC replica is
          many branches behind the leader, use a PMU-overflow interrupt
          to skip most of the distance and arm the breakpoint only for
          the final stretch, instead of taking a debug exception on
          every pass over the leader's address. *)
  trace_output : bool;
      (** Honour [FT_Add_Trace] (the LC-*-N rows of Table VII set this
          to false to show the cost of losing driver output voting). *)
  with_net : bool;  (** Attach the network device. *)
  ingress_check : bool;
      (** Verify DMA ingress payloads against the NIC's enqueue-time
          checksum (RX_CSUM) before they are consumed: [FT_Mem_Rep]
          recomputes the frame checksum over the buffer it actually
          read, folds the verified digest into every replica's
          signature, and on mismatch drops the frame via RX_NACK
          instead of delivering it — the corruption sits outside every
          checkpoint, so rollback cannot repair it; client
          retransmission re-delivers the frame instead. Off by default:
          the unchecked path preserves the paper's Table VII residual
          vulnerability for comparison. *)
  strict_lint : bool;
      (** Fail {!System.create} when the static analyzer rejects the
          program, or when it requires CC and the configuration couples
          loosely (an LC run of a racy program silently risks
          divergence). Off by default: the report is still computed and
          exposed via {!System.lint_report}. *)
  trace : Rcoe_obs.Trace.config option;
      (** Record a structured execution trace ({!Rcoe_obs.Trace}) with
          the given ring capacity. [None] (the default) keeps tracing
          disabled and instrumentation free. *)
  checkpoint_every : int;
      (** Capture a verified checkpoint every N successful sync rounds
          (0, the default, disables checkpointing and rollback
          recovery). With checkpointing on, detections that would halt a
          DMR system — signature mismatch, vote no-consensus, blocked
          masking — instead roll all replicas back to the newest
          verified checkpoint and re-execute. *)
  checkpoint_depth : int;
      (** Bounded ring of retained checkpoints (>= 1). Depth >= 2 lets
          recovery escalate past a snapshot that itself froze in the
          fault (captured after the vote but before the corruption was
          detectable). *)
  checkpoint_mode : checkpoint_mode;
      (** Capture strategy; default [Incremental]. *)
  max_rollbacks : int;
      (** Total rollback budget per run (>= 1). A persistent fault
          exhausts it and the system fail-stops as before. *)
  exec_backend : exec_backend;
      (** Execution backend for every replica; default [Interp]. *)
  detection : detection;
      (** Detection strategy; default [Lockstep]. [Replay] requires
          [mode = Base], [engine = Sequential] (the checker domains are
          owned by the replay engine itself), and [checkpoint_every = 0]
          (chunks cut their own checkpoints). *)
  replay_chunk_ticks : int;
      (** Replay chunk length in preemption ticks (>= 1, default 1):
          a chunk spans [replay_chunk_ticks * tick_interval] cycles. *)
  replay_queue_depth : int;
      (** Maximum chunks in flight, including the one being accumulated
          (>= 1, default 4). The primary harvests the oldest verdict —
          blocking on its checker if necessary — before opening a chunk
          that would exceed this, so memory stays bounded and detection
          lag never exceeds [replay_queue_depth] chunks. *)
  replay_checkers : int;
      (** Concurrent checker domains (>= 1, default 2). Fewer checkers
          than [replay_queue_depth] lets verification batch up behind
          the queue; more than the queue depth is never useful. *)
}

val default : t
(** Base mode, one replica, x86, [Sync_args], no VM, sane intervals. *)

val validate : ?net_ok:bool -> t -> (unit, string) result
(** Reject inconsistent configurations: [Base] with replicas <> 1, LC/CC
    with fewer than 2, masking with fewer than 3, VM on Arm (the paper's
    seL4 version lacks Arm hypervisor mode), CC masking on Arm (no spare
    page-table bit — Section IV-A). [net_ok] is forwarded to
    {!parallel_ineligibility}. *)

val parallel_ineligibility : ?net_ok:bool -> t -> string option
(** Lint-style eligibility check for the parallel engine: [Some reason]
    when the configuration genuinely cannot run domain-parallel —
    [with_net] without a footprint proof (per-cycle cross-partition
    DMA/IRQ traffic), and replicated modes without [exception_barriers]
    (an uncontrolled kernel abort halts the whole system mid-round).
    [None] means [engine = Parallel] is valid. {!validate} rejects
    ineligible parallel configurations with this reason.

    [net_ok] (default [false]) is the per-workload verdict of the
    footprint analyzer ([Eligibility.check]): pass [true] only when the
    analysis proved the program touches device state exclusively through
    the kernel-serialised syscall paths — [System.create] does this
    automatically for networked parallel configurations. *)

val replicas_label : t -> string
(** "Base", "LC-D", "LC-T", "CC-D", "CC-T", … as the paper labels
    configurations. *)

val mode_to_string : mode -> string
val sync_level_to_string : sync_level -> string
val engine_to_string : engine -> string
val checkpoint_mode_to_string : checkpoint_mode -> string
val exec_backend_to_string : exec_backend -> string
val detection_to_string : detection -> string
