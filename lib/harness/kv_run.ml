open Rcoe_core
open Rcoe_workloads

type result = {
  elapsed_cycles : int;
  ops_completed : int;
  kops_per_sec : float;
  counters : Ycsb.counters;
  stalled : bool;
  sys : System.t;
}

let program_for ~config ~records ~operations =
  let branch_count = Wl.branch_count_for config.Config.arch in
  Kvstore.program ~max_records:(records + operations + 64) ~net_dpn:0
    ~branch_count ()

let run ~config ~workload ~records ~operations ?(window = 8) ?(gen_seed = 11)
    ?(chunk = 400) ?(stall_limit = 3_000_000) ?(max_cycles = 600_000_000)
    ?inject ?(stop_on_error = false) () =
  let config = { config with Config.with_net = true } in
  let program = program_for ~config ~records ~operations in
  let sys = System.create ~config ~program in
  let net =
    match System.netdev sys with
    | Some n -> n
    | None -> invalid_arg "Kv_run.run: no network device"
  in
  let gen = Ycsb.create { Ycsb.records; operations; seed = gen_seed } workload in
  let start = System.now sys in
  let run_start = ref None in
  let run_completed = ref 0 in
  let last_progress = ref (System.now sys) in
  let stalled = ref false in
  let stop = ref false in
  while
    (not !stop)
    && (not (Ycsb.finished gen))
    && System.halted sys = None
    && (not !stalled)
    && (not (System.finished sys))
    (* A "finished" server means its threads died: the service is dead. *)
    && System.now sys - start < max_cycles
  do
    (* Top up the outstanding window. The run phase starts only once the
       load phase has fully drained, so throughput is measured cleanly. *)
    let may_issue =
      (not (Ycsb.load_phase_done gen)) || !run_start <> None
    in
    let continue_topup = ref may_issue in
    while Ycsb.outstanding gen < window && !continue_topup do
      match Ycsb.next_request gen with
      | Some req -> Rcoe_machine.Netdev.inject net ~now:(System.now sys) req
      | None -> continue_topup := false
    done;
    let before = (Ycsb.counters gen).Ycsb.completed in
    System.run sys ~max_cycles:chunk;
    (* Drain responses. *)
    List.iter
      (fun (_, payload) ->
        Ycsb.on_response gen payload;
        if !run_start <> None then incr run_completed)
      (Rcoe_machine.Netdev.take_tx net);
    let c = Ycsb.counters gen in
    if c.Ycsb.completed > before then last_progress := System.now sys;
    if
      !run_start = None
      && Ycsb.load_phase_done gen
      && Ycsb.outstanding gen = 0
    then begin
      run_start := Some (System.now sys);
      last_progress := System.now sys
    end;
    if System.now sys - !last_progress > stall_limit then stalled := true;
    (match inject with Some f -> f sys | None -> ());
    if
      stop_on_error
      && (c.Ycsb.corrupted > 0 || c.Ycsb.client_errors > 0)
    then stop := true
  done;
  let c = Ycsb.counters gen in
  if System.finished sys && not (Ycsb.finished gen) then stalled := true;
  let run_start_cycle = Option.value ~default:(System.now sys) !run_start in
  let elapsed = max 1 (System.now sys - run_start_cycle) in
  let profile = Rcoe_machine.Arch.profile_of config.Config.arch in
  let secs =
    float_of_int elapsed /. (float_of_int profile.Rcoe_machine.Arch.freq_mhz *. 1e6)
  in
  {
    elapsed_cycles = elapsed;
    ops_completed = !run_completed;
    kops_per_sec = (if secs > 0.0 then float_of_int !run_completed /. secs /. 1e3 else 0.0);
    counters = c;
    stalled = !stalled;
    sys;
  }
