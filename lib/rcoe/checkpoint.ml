open Rcoe_machine
open Rcoe_kernel

type region =
  | R_full of int array
  | R_delta of { r_len : int; r_pages : (int * int array) list }

type kind = Full | Delta

type replica_image = {
  i_rid : int;
  i_partition : region;
  i_kernel : Kernel.snapshot;
  i_finished : bool;
}

type snap = {
  s_kind : kind;
  s_cycle : int;
  s_round_seq : int;
  s_ticks : int;
  s_prim : int;
  s_shared : region;
  s_dma : region;
  s_replicas : replica_image list;
  s_words : int;
  s_skipped_words : int;
}

type t = {
  depth : int;
  mutable snaps : snap list;
      (* newest first; length <= depth unless pins defer eviction *)
  mutable taken : int;
  mutable pins : (snap * int ref) list;
      (* physical-identity refcounts; non-empty only while a consumer
         (replay checker, diagnostic) holds a snapshot handle *)
}

let create ~depth =
  if depth < 1 then invalid_arg "Checkpoint.create: depth must be >= 1";
  { depth; snaps = []; taken = 0; pins = [] }

let depth t = t.depth
let count t = List.length t.snaps
let taken t = t.taken
let to_list t = t.snaps

let region_len = function R_full a -> Array.length a | R_delta d -> d.r_len

let pages_words pages =
  List.fold_left (fun n (_, b) -> n + Array.length b) 0 pages

let region_copied = function
  | R_full a -> Array.length a
  | R_delta d -> pages_words d.r_pages

(* A delta whose pages cover the whole region (pages are disjoint by
   construction, so coverage is just the word count). Such a delta is
   self-contained: applying it over any base yields the same image. *)
let delta_complete ~r_len ~r_pages = pages_words r_pages = r_len

let apply_pages arr pages =
  List.iter (fun (off, block) -> Array.blit block 0 arr off (Array.length block)) pages

(* Fold an evicted, fully-resolved base region under a newer region,
   producing the newer snapshot's self-contained image. Reuses (and
   mutates) the base's arrays, so each eviction costs O(delta), not
   O(partition). *)
let fold_region ~base region =
  match (region, base) with
  | R_full _, _ -> region
  | R_delta d, Some (R_full arr) ->
      apply_pages arr d.r_pages;
      R_full arr
  | R_delta _, Some (R_delta _) ->
      invalid_arg "Checkpoint: folding onto an unresolved base"
  | R_delta d, None ->
      if not (delta_complete ~r_len:d.r_len ~r_pages:d.r_pages) then
        invalid_arg "Checkpoint: unresolvable delta (no base)";
      let arr = Array.make d.r_len 0 in
      apply_pages arr d.r_pages;
      R_full arr

(* Rewrite [snap] as a self-contained (all-[R_full]) snapshot using the
   evicted base directly below it. Replicas present only in the base
   were dead by [snap]'s capture and are dropped with it; replicas
   present only in [snap] were reintegrated in between, which fully
   dirties their partition, so their delta is complete on its own. *)
let fold_into ~evicted snap =
  let find_base rid =
    List.find_opt (fun i -> i.i_rid = rid) evicted.s_replicas
  in
  {
    snap with
    s_kind = Full;
    s_shared = fold_region ~base:(Some evicted.s_shared) snap.s_shared;
    s_dma = fold_region ~base:(Some evicted.s_dma) snap.s_dma;
    s_replicas =
      List.map
        (fun img ->
          let base =
            Option.map (fun b -> b.i_partition) (find_base img.i_rid)
          in
          { img with i_partition = fold_region ~base img.i_partition })
        snap.s_replicas;
  }

let pinned t snap = List.exists (fun (s, _) -> s == snap) t.pins

let pin t snap =
  match List.find_opt (fun (s, _) -> s == snap) t.pins with
  | Some (_, r) -> incr r
  | None -> t.pins <- (snap, ref 1) :: t.pins

(* Eviction folds the oldest snapshot's arrays into its successor —
   mutating the one and replacing the other — so both are off-limits
   while any consumer holds a handle to them. Pinned tails simply defer
   eviction: the ring grows past [depth] and shrinks back as soon as the
   pins are released. *)
let rec shrink t =
  if List.length t.snaps > t.depth then
    match List.rev t.snaps with
    | oldest :: next :: rest
      when (not (pinned t oldest)) && not (pinned t next) ->
        t.snaps <- List.rev (fold_into ~evicted:oldest next :: rest);
        shrink t
    | _ -> ()

let unpin t snap =
  match List.find_opt (fun (s, _) -> s == snap) t.pins with
  | None -> invalid_arg "Checkpoint.unpin: snapshot is not pinned"
  | Some (_, r) ->
      decr r;
      if !r = 0 then
        t.pins <- List.filter (fun (s, _) -> not (s == snap)) t.pins;
      shrink t

let push t snap =
  t.snaps <- snap :: t.snaps;
  t.taken <- t.taken + 1;
  shrink t

let newest t = match t.snaps with [] -> None | s :: _ -> Some s

let drop_newest t =
  match t.snaps with [] -> () | _ :: rest -> t.snaps <- rest

let words s = s.s_words
let skipped_words s = s.s_skipped_words
let kind s = s.s_kind

let total_words s =
  List.fold_left
    (fun n i -> n + region_len i.i_partition)
    (region_len s.s_shared + region_len s.s_dma)
    s.s_replicas

let capture_region mem ~kind ~base ~len =
  match kind with
  | Full -> R_full (Mem.read_block mem base len)
  | Delta ->
      let r_pages =
        List.map
          (fun page ->
            let off = page - base in
            let blen = min Mem.page_size (len - off) in
            (off, Mem.read_block mem page blen))
          (Mem.snapshot_dirty mem ~addr:base ~len)
      in
      R_delta { r_len = len; r_pages }

let capture ?(clear_dirty = true) mem (lay : Layout.t) ~kind ~cycle ~round_seq
    ~ticks ~prim ~replicas =
  let sh = lay.Layout.shared in
  let images =
    List.map
      (fun (rid, kern, finished) ->
        let p = lay.Layout.partitions.(rid) in
        {
          i_rid = rid;
          i_partition =
            capture_region mem ~kind ~base:p.Layout.p_base ~len:p.Layout.p_words;
          i_kernel = Kernel.snapshot kern;
          i_finished = finished;
        })
      replicas
  in
  let shared = capture_region mem ~kind ~base:sh.Layout.s_base ~len:sh.Layout.s_words in
  let dma = capture_region mem ~kind ~base:lay.Layout.dma_base ~len:lay.Layout.dma_words in
  let copied =
    List.fold_left
      (fun n img -> n + region_copied img.i_partition)
      (region_copied shared + region_copied dma)
      images
  in
  let total =
    List.fold_left
      (fun n img -> n + region_len img.i_partition)
      (region_len shared + region_len dma)
      images
  in
  if clear_dirty then Mem.clear_dirty mem;
  {
    s_kind = kind;
    s_cycle = cycle;
    s_round_seq = round_seq;
    s_ticks = ticks;
    s_prim = prim;
    s_shared = shared;
    s_dma = dma;
    s_replicas = images;
    s_words = copied;
    s_skipped_words = total - copied;
  }

(* The newest-first chain of same-slot regions needed to resolve the
   head: stop at the first full image, or at a snapshot where the slot
   is absent (a reintegration gap — the delta just above it is
   complete by construction). *)
let regions_for_slot chain slot =
  let rec go = function
    | [] -> []
    | s :: rest -> (
        match slot s with
        | None -> []
        | Some (R_full _ as r) -> [ r ]
        | Some (R_delta _ as r) -> r :: go rest)
  in
  go chain

(* Resolve a newest-first region chain into a fresh full image. *)
let rec resolve_chain = function
  | [] -> invalid_arg "Checkpoint: unresolvable delta chain"
  | R_full arr :: _ -> Array.copy arr
  | R_delta d :: older ->
      let base =
        match older with
        | [] ->
            if not (delta_complete ~r_len:d.r_len ~r_pages:d.r_pages) then
              invalid_arg "Checkpoint: unresolvable delta chain";
            Array.make d.r_len 0
        | _ -> resolve_chain older
      in
      apply_pages base d.r_pages;
      base

let resolve_region t snap slot =
  let rec chain_from = function
    | [] -> [ snap ] (* standalone snapshot, not (or no longer) in the ring *)
    | s :: rest when s == snap -> s :: rest
    | _ :: rest -> chain_from rest
  in
  resolve_chain (regions_for_slot (chain_from t.snaps) slot)

let resolve_partition t snap ~rid =
  resolve_region t snap (fun s ->
      Option.map
        (fun i -> i.i_partition)
        (List.find_opt (fun i -> i.i_rid = rid) s.s_replicas))

let restore_memory mem (lay : Layout.t) t snap =
  List.iter
    (fun img ->
      let p = lay.Layout.partitions.(img.i_rid) in
      Mem.write_block mem p.Layout.p_base
        (resolve_partition t snap ~rid:img.i_rid))
    snap.s_replicas;
  Mem.write_block mem lay.Layout.shared.Layout.s_base
    (resolve_region t snap (fun s -> Some s.s_shared));
  Mem.write_block mem lay.Layout.dma_base
    (resolve_region t snap (fun s -> Some s.s_dma))
