test/test_machine.ml: Alcotest Arch Array Bus Core Device Instr List Machine Mem Netdev Page_table QCheck QCheck_alcotest Rcoe_isa Rcoe_machine Reg
