lib/isa/asm.ml: Array Branch_count Check Hashtbl Instr List Printf Program String
