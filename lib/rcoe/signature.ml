open Rcoe_machine

let words = 3

let modulus = 0xFFFFFFFF

let reset mem ~base =
  Mem.write mem base 0;
  Mem.write mem (base + 1) 0;
  Mem.write mem (base + 2) 0

let bump_event mem ~base = Mem.write mem base (Mem.read mem base + 1)

let event_count mem ~base = Mem.read mem base

let add_word mem ~base w =
  let c0 = (Mem.read mem (base + 1) + (w land modulus)) mod modulus in
  Mem.write mem (base + 1) c0;
  let c1 = (Mem.read mem (base + 2) + c0) mod modulus in
  Mem.write mem (base + 2) c1

(* Bulk accumulation: read the accumulators once, run the recurrence in
   registers with the reduction deferred across a block (linear mod m,
   so per-block reduction is value-identical to the per-word form; the
   block bound keeps the sums inside a 63-bit int — see
   [Rcoe_checksum.Fletcher.reduce_block]), write back once. The single
   write-back still marks the signature page dirty for write tracking,
   exactly like the per-word loop did. *)
let reduce_block = 4096

let add_words mem ~base ws =
  let n = Array.length ws in
  if n > 0 then begin
    let c0 = ref (Mem.read mem (base + 1)) in
    let c1 = ref (Mem.read mem (base + 2)) in
    let i = ref 0 in
    while !i < n do
      let stop = min n (!i + reduce_block) in
      let a0 = ref !c0 and a1 = ref !c1 in
      for j = !i to stop - 1 do
        a0 := !a0 + (Array.unsafe_get ws j land modulus);
        a1 := !a1 + !a0
      done;
      c0 := !a0 mod modulus;
      c1 := !a1 mod modulus;
      i := stop
    done;
    Mem.write mem (base + 1) !c0;
    Mem.write mem (base + 2) !c1
  end

let read mem ~base =
  (Mem.read mem base, Mem.read mem (base + 1), Mem.read mem (base + 2))

let equal3 (a, b, c) (x, y, z) = a = x && b = y && c = z
