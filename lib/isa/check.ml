(* Thin wrappers: the checks now live in the static analyzer
   (lib/isa/analysis); this module keeps the historical entry points
   compiling. *)

let regs_used = Instr.regs_used
let reserved_register_violations = Lint.reserved_register_violations
let exclusives = Lint.exclusives
let rep_strings = Lint.rep_strings
let unresolved_targets = Lint.unresolved_targets
