lib/machine/arch.ml:
