(* Interprocedural interval/stride abstract interpretation over the
   integer registers.

   The domain is a reduced product of intervals with a congruence
   anchored at the lower bound: an {!ival} [{lo; hi; stride}] denotes
   the set { lo + k*stride | k >= 0 } intersected with [lo, hi] when
   [lo] is finite and [stride >= 1]; [stride = 0] marks a singleton.
   Bounds saturate to symbolic infinities well below the native word
   range, so interval arithmetic never wraps; a finite upper bound is
   therefore a true bound on the concrete value (the property the
   footprint classifier relies on).

   Loop termination comes from threshold widening: the widening ladder
   is the set of immediate constants appearing in the program (plus
   their neighbours and the data-segment limits), so a counting loop
   guarded by [b lt rX, #8] stabilises at 8 instead of escaping to
   infinity. Interprocedural precision comes from call-site-sensitive
   entry environments (the [Call] edge carries the caller's registers
   into the callee) combined with per-function exit summaries
   substituted at [Retsite] edges, iterated to an outer fixpoint. *)

(* --- intervals -------------------------------------------------------- *)

let neg_inf = -max_int
let pos_inf = max_int

(* Saturation threshold: any computed bound beyond this collapses to an
   infinity, keeping all finite interval arithmetic wrap-free. *)
let big = 1 lsl 55
let is_fin v = v > neg_inf && v < pos_inf
let norm v = if v >= big then pos_inf else if v <= -big then neg_inf else v

type ival = { lo : int; hi : int; stride : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = gcd (abs a) (abs b)

let mk ?(stride = 1) lo hi =
  let lo = norm lo and hi = norm hi in
  if lo = hi then { lo; hi; stride = 0 }
  else if not (is_fin lo) then { lo; hi; stride = 1 }
  else
    let stride = if stride < 1 then 1 else stride in
    let hi = if is_fin hi then lo + ((hi - lo) / stride * stride) else hi in
    if lo = hi then { lo; hi; stride = 0 } else { lo; hi; stride }

let top = mk neg_inf pos_inf
let const n = mk (norm n) (norm n)
let is_top iv = iv.lo = neg_inf && iv.hi = pos_inf
let is_const iv = iv.lo = iv.hi && is_fin iv.lo

let to_const iv = if is_const iv then Some iv.lo else None

let join_iv a b =
  let lo = min a.lo b.lo and hi = max a.hi b.hi in
  if not (is_fin lo) then mk lo hi
  else
    let s = gcd (gcd a.stride b.stride) (abs (a.lo - b.lo)) in
    mk ~stride:(if s = 0 then 1 else s) lo hi

let meet_iv a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None
  else
    let cong =
      let cand x =
        if is_fin x.lo && x.stride >= 1 then Some (x.lo, x.stride) else None
      in
      match (cand a, cand b) with
      | Some (aa, sa), Some (ab, sb) ->
          if sa >= sb then Some (aa, sa) else Some (ab, sb)
      | (Some _ as c), None | None, (Some _ as c) -> c
      | None, None -> None
    in
    match cong with
    | Some (anchor, s) when s > 1 && is_fin lo && is_fin hi ->
        let up v = v + ((((anchor - v) mod s) + s) mod s) in
        let down v = v - ((((v - anchor) mod s) + s) mod s) in
        let lo = up lo and hi = down hi in
        if lo > hi then None else Some (mk ~stride:s lo hi)
    | _ -> Some (mk lo hi)

(* Saturating bound arithmetic; on conflicting infinities the suffix
   names which way to resolve (towards the bound being computed). *)
let add_lo a b =
  if a = neg_inf || b = neg_inf then neg_inf
  else if a = pos_inf || b = pos_inf then pos_inf
  else norm (a + b)

let add_hi a b =
  if a = pos_inf || b = pos_inf then pos_inf
  else if a = neg_inf || b = neg_inf then neg_inf
  else norm (a + b)

let neg_b v = if v = pos_inf then neg_inf else if v = neg_inf then pos_inf else -v

let add_iv a b =
  let s = gcd a.stride b.stride in
  mk ~stride:(if s = 0 then 1 else s) (add_lo a.lo b.lo) (add_hi a.hi b.hi)

let neg_iv a = mk ~stride:(max a.stride 1) (neg_b a.hi) (neg_b a.lo)
let sub_iv a b = add_iv a (neg_iv b)

(* Multiplication: exact for singletons; scaled for interval-times-const
   when the bounds are small enough that the product cannot wrap; top
   otherwise (native [( * )] wraps, so a partial claim would be
   unsound). *)
let small v = is_fin v && abs v <= 1 lsl 30

let mul_iv a b =
  match (to_const a, to_const b) with
  | Some x, Some y -> const (x * y)
  | _ -> (
      let by_const iv c =
        if c = 0 then Some (const 0)
        else if not (small iv.lo && small iv.hi && abs c <= 1 lsl 30) then None
        else
          let s = max iv.stride 1 * abs c in
          let s = if s > 1 lsl 30 then 1 else s in
          if c > 0 then Some (mk ~stride:s (iv.lo * c) (iv.hi * c))
          else Some (mk ~stride:s (iv.hi * c) (iv.lo * c))
      in
      match (to_const b, to_const a) with
      | Some c, _ -> ( match by_const a c with Some r -> r | None -> top)
      | _, Some c -> ( match by_const b c with Some r -> r | None -> top)
      | _ -> top)

let div_iv a b =
  match (to_const a, to_const b) with
  | Some x, Some y when y <> 0 -> const (x / y)
  | _ ->
      if b.lo >= 1 && a.lo >= 0 && is_fin b.lo then
        mk (if is_fin a.lo && is_fin b.hi then a.lo / b.hi else 0)
          (if is_fin a.hi then a.hi / b.lo else pos_inf)
      else top

let rem_iv a b =
  match (to_const a, to_const b) with
  | Some x, Some y when y <> 0 -> const (x mod y)
  | _, Some k when k <> 0 ->
      let k = abs k in
      if a.lo >= 0 then
        if is_fin a.hi && a.hi < k then a
        else mk 0 (if is_fin a.hi then min a.hi (k - 1) else k - 1)
      else mk (-(k - 1)) (k - 1)
  | _ ->
      if b.lo >= 1 && a.lo >= 0 then
        mk 0 (if is_fin b.hi then b.hi - 1 else pos_inf)
      else top

let and_iv a b =
  match (to_const a, to_const b) with
  | Some x, Some y -> const (x land y)
  | _, Some m when m >= 0 ->
      mk 0 (if a.lo >= 0 && is_fin a.hi then min m a.hi else m)
  | Some m, _ when m >= 0 ->
      mk 0 (if b.lo >= 0 && is_fin b.hi then min m b.hi else m)
  | _ -> if a.lo >= 0 && b.lo >= 0 then mk 0 (min a.hi b.hi) else top

let next_pow2_minus1 v =
  let rec go p = if p - 1 >= v then p - 1 else go (p * 2) in
  if v >= 1 lsl 40 then pos_inf else go 1

let orx_iv exact a b =
  match (to_const a, to_const b) with
  | Some x, Some y -> const (exact x y)
  | _ ->
      if a.lo >= 0 && b.lo >= 0 && is_fin a.hi && is_fin b.hi then
        mk 0 (next_pow2_minus1 (max a.hi b.hi))
      else top

(* Shift semantics mirror {!Core.alu}: the amount is masked to 10 bits
   and amounts >= 63 yield 0 (62 for [Asr]). *)
let shift_amount n = n land 1023

let shl_iv a b =
  match (to_const a, to_const b) with
  | Some x, Some y ->
      let s = shift_amount y in
      const (if s >= 63 then 0 else x lsl s)
  | _, Some y ->
      let s = shift_amount y in
      if s >= 63 then const 0
      else if s <= 30 then mul_iv a (const (1 lsl s))
      else top
  | _ -> top

let shr_iv a b =
  match (to_const a, to_const b) with
  | Some x, Some y ->
      let s = shift_amount y in
      const (if s >= 63 then 0 else x lsr s)
  | _, Some y when a.lo >= 0 ->
      let s = shift_amount y in
      if s >= 63 then const 0
      else
        mk (if is_fin a.lo then a.lo lsr s else 0)
          (if is_fin a.hi then a.hi lsr s else pos_inf)
  | _ -> top

let asr_iv a b =
  match to_const b with
  | Some y ->
      let s = min (shift_amount y) 62 in
      mk
        (if is_fin a.lo then a.lo asr s else neg_inf)
        (if is_fin a.hi then a.hi asr s else pos_inf)
  | None -> top

let alu_iv op a b =
  match (op : Instr.alu) with
  | Instr.Add -> add_iv a b
  | Instr.Sub -> sub_iv a b
  | Instr.Mul -> mul_iv a b
  | Instr.Div -> div_iv a b
  | Instr.Rem -> rem_iv a b
  | Instr.And -> and_iv a b
  | Instr.Or -> orx_iv ( lor ) a b
  | Instr.Xor -> orx_iv ( lxor ) a b
  | Instr.Shl -> shl_iv a b
  | Instr.Shr -> shr_iv a b
  | Instr.Asr -> asr_iv a b

let iv_to_string iv =
  let b v =
    if v = neg_inf then "-inf"
    else if v = pos_inf then "+inf"
    else Printf.sprintf "0x%x" v
  in
  if is_top iv then "top"
  else if is_const iv then b iv.lo
  else if iv.stride > 1 then
    Printf.sprintf "[%s,%s]/%d" (b iv.lo) (b iv.hi) iv.stride
  else Printf.sprintf "[%s,%s]" (b iv.lo) (b iv.hi)

(* --- register environments -------------------------------------------- *)

type env = Bot | Env of ival array

let env_equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Env x, Env y ->
      let ok = ref true in
      for i = 0 to Reg.count - 1 do
        if x.(i) <> y.(i) then ok := false
      done;
      !ok
  | _ -> false

let env_join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Env x, Env y -> Env (Array.init Reg.count (fun i -> join_iv x.(i) y.(i)))

let sp_i = Reg.index Reg.sp

(* All registers unknown except the stack pointer — what a [Retsite]
   falls back to when the callee cannot be resolved. *)
let havoc v =
  let r = Array.make Reg.count top in
  r.(sp_i) <- v.(sp_i);
  Env r

module Lat = struct
  type t = env

  let equal = env_equal
  let join = env_join
end

module Flow = Dataflow.Make (Lat)

(* --- widening thresholds ---------------------------------------------- *)

let thresholds_of program =
  let tbl = Hashtbl.create 64 in
  let add n =
    if is_fin (norm n) then begin
      Hashtbl.replace tbl (n - 1) ();
      Hashtbl.replace tbl n ();
      Hashtbl.replace tbl (n + 1) ()
    end
  in
  add 0;
  add Program.data_base;
  add (Program.data_base + program.Program.data_words);
  Array.iter
    (fun ins ->
      match (ins : Instr.t) with
      | Instr.Mov (_, Instr.Imm n)
      | Instr.Alu (_, _, _, Instr.Imm n)
      | Instr.B (_, _, Instr.Imm n, _)
      | Instr.Atomic_add (_, _, Instr.Imm n) ->
          add n
      | Instr.Ld (_, _, off) | Instr.St (_, _, off) -> add off
      | _ -> ())
    program.Program.code;
  let ts = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
  Array.of_list (List.sort compare ts)

(* Smallest threshold >= v (else +inf) / largest <= v (else -inf). *)
let thr_up ts v =
  let n = Array.length ts in
  let rec bs lo hi =
    if lo >= hi then if lo < n && ts.(lo) >= v then ts.(lo) else pos_inf
    else
      let m = (lo + hi) / 2 in
      if ts.(m) >= v then bs lo m else bs (m + 1) hi
  in
  bs 0 n

let thr_down ts v =
  let n = Array.length ts in
  let rec bs lo hi =
    if lo >= hi then if lo - 1 >= 0 && ts.(lo - 1) <= v then ts.(lo - 1) else neg_inf
    else
      let m = (lo + hi) / 2 in
      if ts.(m) <= v then bs (m + 1) hi else bs lo m
  in
  bs 0 n

let widen_iv ts old j =
  if old = j then j
  else
    let lo_grew = j.lo < old.lo in
    let lo = if lo_grew then thr_down ts j.lo else j.lo in
    let hi = if j.hi > old.hi then thr_up ts j.hi else j.hi in
    (* Re-anchoring the congruence at a widened lower bound would change
       its residue class, so drop the stride in that case. *)
    mk ~stride:(if lo_grew then 1 else max j.stride 1) lo hi

(* --- branch refinement ------------------------------------------------ *)

(* Meet [v] with the fact implied by [r cond op] holding (or its
   negation on the fall edge). *)
let negate = function
  | Instr.Eq -> Instr.Ne
  | Instr.Ne -> Instr.Eq
  | Instr.Lt -> Instr.Ge
  | Instr.Le -> Instr.Gt
  | Instr.Gt -> Instr.Le
  | Instr.Ge -> Instr.Lt

let cond_range cond c =
  match (cond : Instr.cond) with
  | Instr.Eq -> Some (const c)
  | Instr.Ne -> None
  | Instr.Lt -> Some (mk neg_inf (c - 1))
  | Instr.Le -> Some (mk neg_inf c)
  | Instr.Gt -> Some (mk (c + 1) pos_inf)
  | Instr.Ge -> Some (mk c pos_inf)

let refine_ne iv c =
  if is_const iv && iv.lo = c then None
  else if is_fin iv.lo && iv.lo = c then
    (* Advance the lower bound by the stride so the congruence stays in
       the same residue class ({c+s, c+2s, ...}); anchoring at c+1 would
       shift the class and drop real values (e.g. [0,8]/4 refined by
       !=0 must keep {4, 8}, not become {1, 5}). The hi edge below is
       already sound: the anchor is unchanged and [mk] rounds hi down
       onto it. *)
    Some (mk ~stride:iv.stride (c + max 1 iv.stride) iv.hi)
  else if is_fin iv.hi && iv.hi = c then Some (mk ~stride:iv.stride iv.lo (c - 1))
  else Some iv

let assume cond r op v =
  let ri = Reg.index r in
  let against_const v ri cond c =
    match (cond : Instr.cond) with
    | Instr.Ne -> (
        match refine_ne v.(ri) c with
        | None -> None
        | Some iv ->
            let v' = Array.copy v in
            v'.(ri) <- iv;
            Some v')
    | _ -> (
        match cond_range cond c with
        | None -> Some v
        | Some range -> (
            match meet_iv v.(ri) range with
            | None -> None
            | Some iv ->
                let v' = Array.copy v in
                v'.(ri) <- iv;
                Some v'))
  in
  match op with
  | Instr.Imm c -> against_const v ri cond c
  | Instr.Reg r2 ->
      let oi = Reg.index r2 in
      let a = v.(ri) and b = v.(oi) in
      (* Refine each side against the other's bounds; apply both. *)
      let step v =
        match (cond : Instr.cond) with
        | Instr.Eq -> (
            match meet_iv v.(ri) v.(oi) with
            | None -> None
            | Some m ->
                let v' = Array.copy v in
                v'.(ri) <- m;
                v'.(oi) <- m;
                Some v')
        | Instr.Ne ->
            if is_const a && is_const b && a.lo = b.lo then None else Some v
        | Instr.Lt | Instr.Le | Instr.Gt | Instr.Ge ->
            let upper, strict_u =
              (* constraint: ri <= bound (maybe strict) *)
              match cond with
              | Instr.Lt -> (b.hi, true)
              | Instr.Le -> (b.hi, false)
              | _ -> (pos_inf, false)
            and lower, strict_l =
              match cond with
              | Instr.Gt -> (b.lo, true)
              | Instr.Ge -> (b.lo, false)
              | _ -> (neg_inf, false)
            in
            let hi_c =
              if upper = pos_inf then pos_inf
              else if strict_u then upper - 1
              else upper
            and lo_c =
              if lower = neg_inf then neg_inf
              else if strict_l then lower + 1
              else lower
            in
            (match meet_iv v.(ri) (mk lo_c hi_c) with
            | None -> None
            | Some ra -> (
                (* mirrored constraint on the other register *)
                let lo_o, hi_o =
                  match cond with
                  | Instr.Lt -> ((if is_fin a.lo then a.lo + 1 else neg_inf), pos_inf)
                  | Instr.Le -> (a.lo, pos_inf)
                  | Instr.Gt -> (neg_inf, if is_fin a.hi then a.hi - 1 else pos_inf)
                  | Instr.Ge -> (neg_inf, a.hi)
                  | _ -> (neg_inf, pos_inf)
                in
                match meet_iv v.(oi) (mk lo_o hi_o) with
                | None -> None
                | Some rb ->
                    let v' = Array.copy v in
                    v'.(ri) <- ra;
                    v'.(oi) <- rb;
                    Some v'))
      in
      step v

(* --- transfer function ------------------------------------------------ *)

type syscall_model = sysno:int -> r0:ival -> ival

let default_syscall : syscall_model = fun ~sysno:_ ~r0:_ -> top

let transfer_of program (syscall : syscall_model) =
  let eval v = function
    | Instr.Imm n -> const n
    | Instr.Reg r -> v.(Reg.index r)
  in
  fun _addr ins env ->
    match env with
    | Bot -> Bot
    | Env v -> (
        let set r iv =
          let v' = Array.copy v in
          v'.(Reg.index r) <- iv;
          Env v'
        in
        match (ins : Instr.t) with
        | Instr.Nop | Instr.Halt | Instr.St _ | Instr.Ret | Instr.Jmp _
        | Instr.B _ | Instr.Jr _ | Instr.Fb _ | Instr.Falu _ | Instr.Funop _
        | Instr.Fldi _ | Instr.Fld _ | Instr.Fst _ | Instr.Itof _ ->
            env
        | Instr.Mov (rd, o) -> set rd (eval v o)
        | Instr.La (rd, l) -> set rd (const (Program.data_addr program l))
        | Instr.Alu (op, rd, rs, o) ->
            set rd (alu_iv op v.(Reg.index rs) (eval v o))
        | Instr.Not (rd, rs) -> (
            match to_const v.(Reg.index rs) with
            | Some x -> set rd (const (lnot x))
            | None -> set rd top)
        | Instr.Ld (rd, _, _) -> set rd top
        | Instr.Push _ ->
            set Reg.sp (sub_iv v.(sp_i) (const 1))
        | Instr.Pop rd ->
            let v' = Array.copy v in
            v'.(Reg.index rd) <- top;
            v'.(sp_i) <- add_iv v.(sp_i) (const 1);
            if Reg.equal rd Reg.sp then v'.(sp_i) <- top;
            Env v'
        | Instr.Jal _ -> set Reg.lr top
        | Instr.Syscall n -> set Reg.R0 (syscall ~sysno:n ~r0:v.(Reg.index Reg.R0))
        | Instr.Rep_movs ->
            let v' = Array.copy v in
            let r0 = Reg.index Reg.R0
            and r1 = Reg.index Reg.R1
            and r2 = Reg.index Reg.R2 in
            let cnt = v.(r2) in
            (* count <= 0 copies nothing and leaves r0/r1 unchanged *)
            let cnt_eff = join_iv (const 0) cnt in
            v'.(r0) <- add_iv v.(r0) cnt_eff;
            v'.(r1) <- add_iv v.(r1) cnt_eff;
            v'.(r2) <- const 0;
            Env v'
        | Instr.Ldex (rd, _) -> set rd top
        | Instr.Stex (rres, _, _) -> set rres (mk 0 1)
        | Instr.Atomic_add (rd, _, _) -> set rd top
        | Instr.Cas (rd, _, _, _) -> set rd top
        | Instr.Cntinc -> set Reg.branch_counter top
        | Instr.Ftoi (rd, _) -> set rd top)

(* --- interprocedural driver ------------------------------------------- *)

type result = {
  cfg : Cfg.t;
  before : env array;
  after : env array;
  rounds : int;  (** Outer summary-fixpoint iterations. *)
  diverged : int option;
      (** Address of a non-stabilising block if the inner solver tripped
          its iteration guard (analysis facts are then top-degraded and
          must be treated as "don't know"). *)
}

let reg_of before addr r =
  match before.(addr) with
  | Bot -> None
  | Env v -> Some v.(Reg.index r)

let analyze ?(syscall = default_syscall) ?init cfg =
  let program = cfg.Cfg.program in
  let code = program.Program.code in
  let n = Array.length code in
  let nb = Array.length cfg.Cfg.blocks in
  let ts = thresholds_of program in
  let init_env =
    match init with
    | Some e -> Env e
    | None -> Env (Array.make Reg.count top)
  in
  (* Widening points: every target of an address-retreating edge — any
     control-flow cycle contains at least one such edge. *)
  let widen_pts = Hashtbl.create 16 in
  Array.iter
    (fun b ->
      List.iter
        (fun (p, _) ->
          if cfg.Cfg.blocks.(p).Cfg.first >= b.Cfg.first then
            Hashtbl.replace widen_pts b.Cfg.first ())
        b.Cfg.preds)
    cfg.Cfg.blocks;
  let widen ~at ~old inflow =
    let j = env_join old inflow in
    if not (Hashtbl.mem widen_pts at) then j
    else
      match (old, j) with
      | Bot, _ | _, Bot -> j
      | Env o, Env x ->
          Env (Array.init Reg.count (fun i -> widen_iv ts o.(i) x.(i)))
  in
  (* Call graph: call site -> callee entry; callee entry -> its Ret
     addresses (found by walking instruction successors without
     descending through further Call edges). *)
  let call_target src =
    List.find_map
      (fun (k, t) -> if k = Cfg.Call then Some t else None)
      cfg.Cfg.insn_succs.(src)
  in
  let callees = Hashtbl.create 8 in
  Array.iteri
    (fun a ins ->
      match (ins : Instr.t) with
      | Instr.Jal _ -> (
          match call_target a with
          | Some e when not (Hashtbl.mem callees e) ->
              let seen = Array.make n false in
              let q = Queue.create () in
              Queue.add e q;
              if e >= 0 && e < n then seen.(e) <- true;
              let rets = ref [] in
              while not (Queue.is_empty q) do
                let a = Queue.pop q in
                (match code.(a) with
                | Instr.Ret -> rets := a :: !rets
                | _ -> ());
                List.iter
                  (fun (k, s) ->
                    if k <> Cfg.Call && s >= 0 && s < n && not (seen.(s))
                    then begin
                      seen.(s) <- true;
                      Queue.add s q
                    end)
                  cfg.Cfg.insn_succs.(a)
              done;
              Hashtbl.replace callees e !rets
          | _ -> ())
      | _ -> ())
    code;
  let summaries = Hashtbl.create 8 in
  let summary e = try Hashtbl.find summaries e with Not_found -> Bot in
  let transfer = transfer_of program syscall in
  let refine_edge src k v =
    match code.(src) with
    | Instr.B (cond, r, op, _) -> (
        let cond = if k = Cfg.Jump then cond else negate cond in
        match assume cond r op v with None -> Bot | Some v' -> Env v')
    | _ -> Env v
  in
  let edge_at ~src k x =
    match x with
    | Bot -> Bot
    | Env v -> (
        match (k : Cfg.edge_kind) with
        | Cfg.Call -> x
        | Cfg.Retsite -> (
            match call_target src with
            | Some e -> (
                match summary e with
                | Bot -> Bot
                | Env s ->
                    let r = Array.copy s in
                    (* balanced callee: sp on return = sp at the call *)
                    r.(sp_i) <- v.(sp_i);
                    Env r)
            | None -> havoc v)
        | Cfg.Fall | Cfg.Jump -> refine_edge src k v
        | Cfg.Indirect -> x)
  in
  let max_rounds = 64 in
  let solve () =
    Flow.solve ~cfg ~direction:Dataflow.Forward ~init:init_env ~bottom:Bot
      ~transfer ~edge_at ~widen
      ~max_visits:(4096 * (nb + 8))
      ()
  in
  let diverged = ref None in
  let rec iterate round r =
    let changed = ref false in
    Hashtbl.iter
      (fun e rets ->
        let s =
          List.fold_left
            (fun acc a -> env_join acc r.Flow.after.(a))
            (summary e) rets
        in
        if not (env_equal s (summary e)) then begin
          changed := true;
          Hashtbl.replace summaries e s
        end)
      callees;
    if not !changed then (r, round)
    else if round >= max_rounds then begin
      (* Summaries still growing: facts would be unsound if trusted. *)
      diverged := Some (-1);
      (r, round)
    end
    else
      match solve () with
      | r' -> iterate (round + 1) r'
      | exception Dataflow.Diverged a ->
          diverged := Some a;
          (r, round)
  in
  match solve () with
  | r ->
      let r, rounds = iterate 1 r in
      { cfg; before = r.Flow.before; after = r.Flow.after; rounds;
        diverged = !diverged }
  | exception Dataflow.Diverged a ->
      {
        cfg;
        before = Array.make n (Env (Array.make Reg.count top));
        after = Array.make n (Env (Array.make Reg.count top));
        rounds = 0;
        diverged = Some a;
      }
