type mode = Base | LC | CC

type sync_level = Sync_none | Sync_args | Sync_vote

type engine = Sequential | Parallel

type checkpoint_mode = Full | Incremental

type exec_backend = Interp | Blocks

type detection = Lockstep | Replay

type t = {
  engine : engine;
  mode : mode;
  nreplicas : int;
  arch : Rcoe_machine.Arch.t;
  sync_level : sync_level;
  vm : bool;
  tick_interval : int;
  barrier_timeout : int;
  user_words : int;
  seed : int;
  exception_barriers : bool;
  masking : bool;
  timeout_masking : bool;
  fast_catchup : bool;
  trace_output : bool;
  with_net : bool;
  ingress_check : bool;
  strict_lint : bool;
  trace : Rcoe_obs.Trace.config option;
  checkpoint_every : int;
  checkpoint_depth : int;
  checkpoint_mode : checkpoint_mode;
  max_rollbacks : int;
  exec_backend : exec_backend;
  detection : detection;
  replay_chunk_ticks : int;
  replay_queue_depth : int;
  replay_checkers : int;
}

let default =
  {
    engine = Sequential;
    mode = Base;
    nreplicas = 1;
    arch = Rcoe_machine.Arch.X86;
    sync_level = Sync_args;
    vm = false;
    tick_interval = 50_000;
    barrier_timeout = 400_000;
    user_words = 192 * 1024;
    seed = 1;
    exception_barriers = false;
    masking = false;
    timeout_masking = false;
    fast_catchup = false;
    trace_output = true;
    with_net = false;
    ingress_check = false;
    strict_lint = false;
    trace = None;
    checkpoint_every = 0;
    checkpoint_depth = 2;
    checkpoint_mode = Incremental;
    max_rollbacks = 3;
    exec_backend = Interp;
    detection = Lockstep;
    replay_chunk_ticks = 1;
    replay_queue_depth = 4;
    replay_checkers = 2;
  }

let mode_to_string = function Base -> "Base" | LC -> "LC" | CC -> "CC"

let engine_to_string = function
  | Sequential -> "sequential"
  | Parallel -> "parallel"

let checkpoint_mode_to_string = function
  | Full -> "full"
  | Incremental -> "incremental"

let exec_backend_to_string = function Interp -> "interp" | Blocks -> "blocks"

let detection_to_string = function Lockstep -> "lockstep" | Replay -> "replay"

(* Lint-style eligibility check for the domain-parallel engine. The
   parallel engine runs replicas concurrently only between sync points,
   so any feature that couples partitions *within* a round, at cycle
   granularity, keeps the configuration sequential. Returns the reason
   the configuration cannot run in parallel, or [None] if it can.

   [net_ok] is the footprint analyzer's per-workload verdict (see
   [Eligibility]): a networked configuration is only admitted when the
   caller proved that the program reaches device state exclusively
   through the kernel-serialised syscall paths. Config alone cannot know
   that — it never sees the program — so the default stays the blanket
   rejection. *)
let parallel_ineligibility ?(net_ok = false) t =
  if t.with_net && not net_ok then
    Some
      "with_net: device DMA and IRQ delivery touch shared machine state \
       every cycle, so replica cycles cannot be re-ordered across a window \
       unless the workload's memory footprint proves all device-ring \
       accesses are kernel-serialised (run `rcoe_run lint` for the \
       per-workload verdict)"
  else if t.mode <> Base && not t.exception_barriers then
    Some
      "exception_barriers=false under replication: an uncontrolled kernel \
       abort halts the whole system mid-round, which a concurrently \
       running sibling replica would observe too late (enable \
       exception_barriers to confine aborts to the faulting replica)"
  else None

let sync_level_to_string = function
  | Sync_none -> "N"
  | Sync_args -> "A"
  | Sync_vote -> "S"

let validate ?net_ok t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.mode = Base && t.nreplicas <> 1 then
    err "Base mode requires exactly 1 replica (got %d)" t.nreplicas
  else if t.mode <> Base && t.nreplicas < 2 then
    err "%s mode requires at least 2 replicas" (mode_to_string t.mode)
  else if t.masking && t.nreplicas < 3 then
    err "error masking requires TMR (at least 3 replicas)"
  else if t.vm && t.arch = Rcoe_machine.Arch.Arm then
    err "virtual machines are not supported on the Arm platform"
  else if t.vm && t.mode = LC then
    err "LC-RCoE cannot support virtual machines (data races in guests)"
  else if t.masking && t.mode = CC && t.arch = Rcoe_machine.Arch.Arm then
    err "CC error masking is unsupported on 32-bit Arm (no spare PTE bit)"
  else if t.timeout_masking && not t.masking then
    err "timeout_masking requires masking"
  else if t.tick_interval <= 0 then err "tick_interval must be positive"
  else if (match t.trace with Some { Rcoe_obs.Trace.capacity } -> capacity <= 0 | None -> false)
  then err "trace capacity must be positive"
  else if t.barrier_timeout <= t.tick_interval / 10 then
    err "barrier_timeout too small relative to tick_interval"
  else if t.checkpoint_every < 0 then err "checkpoint_every must be >= 0"
  else if t.checkpoint_every > 0 && t.mode = Base then
    err "checkpointing requires a replicated mode (LC or CC)"
  else if t.checkpoint_every > 0 && t.checkpoint_depth < 1 then
    err "checkpoint_depth must be >= 1"
  else if t.checkpoint_every > 0 && t.max_rollbacks < 1 then
    err "max_rollbacks must be >= 1"
  else if t.detection = Replay && t.mode <> Base then
    err
      "replay detection runs an unreplicated primary (mode Base); %s \
       lockstep replication already detects at every sync point"
      (mode_to_string t.mode)
  else if t.detection = Replay && t.engine = Parallel then
    err
      "replay detection owns the checker domains itself; the primary \
       runs on the sequential engine"
  else if t.detection = Replay && t.checkpoint_every > 0 then
    err
      "replay detection cuts its own per-chunk checkpoints; \
       checkpoint_every must be 0"
  else if t.detection = Replay && t.replay_chunk_ticks < 1 then
    err "replay_chunk_ticks must be >= 1"
  else if t.detection = Replay && t.replay_queue_depth < 1 then
    err "replay_queue_depth must be >= 1"
  else if t.detection = Replay && t.replay_checkers < 1 then
    err "replay_checkers must be >= 1"
  else if t.detection = Replay && t.checkpoint_depth < 1 then
    err "checkpoint_depth must be >= 1"
  else if t.detection = Replay && t.max_rollbacks < 1 then
    err "max_rollbacks must be >= 1"
  else
    match t.engine with
    | Sequential -> Ok ()
    | Parallel -> (
        match parallel_ineligibility ?net_ok t with
        | None -> Ok ()
        | Some reason -> err "parallel engine ineligible: %s" reason)

let replicas_label t =
  match (t.mode, t.nreplicas) with
  | Base, _ -> "Base"
  | LC, 2 -> "LC-D"
  | LC, 3 -> "LC-T"
  | CC, 2 -> "CC-D"
  | CC, 3 -> "CC-T"
  | m, n -> Printf.sprintf "%s-%d" (mode_to_string m) n
