lib/workloads/kvstore.ml: Asm Instr Rcoe_isa Rcoe_kernel Rcoe_machine Reg Wl
