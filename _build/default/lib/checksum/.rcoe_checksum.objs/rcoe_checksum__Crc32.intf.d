lib/checksum/crc32.mli:
