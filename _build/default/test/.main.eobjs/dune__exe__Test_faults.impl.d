test/test_faults.ml: Alcotest Array Injector Layout List Mem Outcome Overclock Rcoe_core Rcoe_faults Rcoe_harness Rcoe_kernel Rcoe_machine
