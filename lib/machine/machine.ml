open Rcoe_util

type t = {
  profile : Arch.profile;
  mem : Mem.t;
  buses : Bus.t array;
  cores : Core.t array;
  mutable devices : Device.t array;
  mutable now : int;
  mutable irq_route : int;
  ipi_pending : int array;
  trace : Rcoe_obs.Trace.t;
}

let create ?trace ~profile ~mem_words ~ncores ~seed () =
  let root = Rng.create seed in
  let cores =
    Array.init ncores (fun id -> Core.create ~id ~jitter_seed:(Rng.next root))
  in
  let trace =
    match trace with Some tr -> tr | None -> Rcoe_obs.Trace.disabled ()
  in
  let t =
    {
      profile;
      mem = Mem.create mem_words;
      buses =
        (* Fair-share lanes: each core owns an equal slice of the bus
           bandwidth. A single core (Base mode) keeps the whole rate, so
           unreplicated runs are unchanged; replicated runs divide the
           bandwidth evenly instead of by stepping order, which is both
           the paper's Table V model and free of cross-core state — each
           replica's memory timing depends only on its own lane. *)
        (let lane_rate = profile.Arch.bus_rate /. float_of_int ncores in
         Array.init ncores (fun _ -> Bus.create ~rate:lane_rate));
      cores;
      devices = [||];
      now = 0;
      irq_route = 0;
      ipi_pending = Array.make ncores max_int;
      trace;
    }
  in
  Rcoe_obs.Trace.set_clock trace (fun () -> t.now);
  t

let add_device t dev =
  t.devices <- Array.append t.devices [| dev |];
  Array.length t.devices - 1

let tick t =
  t.now <- t.now + 1;
  Array.iter Bus.tick t.buses;
  Array.iter (fun d -> d.Device.dev_tick ~now:t.now) t.devices

let tick_devices t =
  Array.iter (fun d -> d.Device.dev_tick ~now:t.now) t.devices

let bus_lane t ~core_id = t.buses.(core_id)

let bus_utilisation t =
  let n = Array.length t.buses in
  if n = 0 then 0.0
  else
    Array.fold_left (fun acc b -> acc +. Bus.utilisation b) 0.0 t.buses
    /. float_of_int n

let dev_read t dpn off =
  if dpn >= 0 && dpn < Array.length t.devices then
    t.devices.(dpn).Device.read_reg off
  else 0

let dev_write t dpn off v =
  if dpn >= 0 && dpn < Array.length t.devices then
    t.devices.(dpn).Device.write_reg off v

let pending_irq t ~core_id =
  if core_id <> t.irq_route then None
  else
    let n = Array.length t.devices in
    let rec find i =
      if i >= n then None
      else if t.devices.(i).Device.irq_pending () then Some i
      else find (i + 1)
    in
    find 0

let ack_irq t dpn =
  if dpn >= 0 && dpn < Array.length t.devices then begin
    Rcoe_obs.Trace.dev_irq t.trace ~dpn;
    t.devices.(dpn).Device.irq_ack ()
  end

let send_ipi t ~target =
  if target >= 0 && target < Array.length t.ipi_pending then begin
    Rcoe_obs.Trace.ipi t.trace ~target;
    t.ipi_pending.(target) <-
      min t.ipi_pending.(target) (t.now + t.profile.Arch.ipi_latency)
  end

let ipi_visible t ~core_id = t.ipi_pending.(core_id) <= t.now

let clear_ipi t ~core_id = t.ipi_pending.(core_id) <- max_int

let route_irqs_to t core_id = t.irq_route <- core_id
