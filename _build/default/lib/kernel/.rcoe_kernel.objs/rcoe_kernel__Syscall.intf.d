lib/kernel/syscall.mli:
