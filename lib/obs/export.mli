(** Trace rendering: Chrome trace-event JSON (Perfetto) and a text
    summary.

    The JSON maps onto Perfetto's UI as one track per replica (pid 0 =
    "replicas", tid = replica id) plus a machine track (pid 1) for
    rounds, IPIs, device IRQs and downgrades. Sync phases, syscalls,
    bus stalls and downgrade/reintegration spans become "X" (complete)
    duration events; votes, injections, breakpoint fires and the other
    point-like events become "i" (instant) events. Load the file at
    [ui.perfetto.dev] or [chrome://tracing]. *)

val to_chrome_json : ?extra:Json.t list -> Trace.t -> string
(** The whole ring as [{"traceEvents": [...], ...}]. Phase pairs are
    matched per replica; a phase still open when the trace ends is
    closed at the last timestamp seen. When the ring wrapped, a
    [trace-truncated] instant stating the number of lost events is
    emitted at the earliest surviving timestamp (the loss is also in
    [otherData.dropped_events]). [extra] events (e.g.
    {!Reqtrace.chrome_events} request tracks) are appended to
    [traceEvents]. *)

val write_chrome : ?extra:Json.t list -> path:string -> Trace.t -> unit

val summary_table : Trace.t -> Rcoe_util.Table.t
(** Per-replica totals: occurrences and total cycles of each sync
    phase, plus counts of the point events — the Table II/V view. *)
