let () =
  Alcotest.run "rcoe"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("hdr", Test_hdr.suite);
      ("checksum", Test_checksum.suite);
      ("isa", Test_isa.suite);
      ("analysis", Test_analysis.suite);
      ("absint", Test_absint.suite);
      ("machine", Test_machine.suite);
      ("kernel", Test_kernel.suite);
      ("rcoe", Test_rcoe.suite);
      ("faults", Test_faults.suite);
      ("ycsb", Test_ycsb.suite);
      ("extensions", Test_extensions.suite);
      ("ft-ops", Test_ft_ops.suite);
      ("harness", Test_harness.suite);
      ("kv-protocol", Test_kv_protocol.suite);
      ("differential", Test_differential.suite);
      ("masking-cc", Test_masking_cc.suite);
      ("properties", Test_properties.suite);
      ("recovery", Test_recovery.suite);
      ("ckpt-incr", Test_ckpt_incr.suite);
      ("engine-par", Test_engine_par.suite);
      ("system-smoke", Test_system_smoke.suite);
      ("workloads", Test_workloads.suite);
      ("ingress", Test_ingress.suite);
      ("serve", Test_serve.suite);
      ("exec-blocks", Test_exec_blocks.suite);
      ("replay", Test_replay.suite);
    ]
