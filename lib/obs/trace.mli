(** Cycle-stamped structured execution traces.

    The trade-off analysis of the paper (Sections III-D/F, Tables II-V
    and X) is about *where cycles go*: barrier stalls, debug-exception
    catch-up, VM exits, bus contention, detection latency. A trace
    reifies those phases as typed events in a bounded ring buffer so
    any run can be profiled after the fact — and exported to Perfetto
    via {!Export}.

    A trace object always exists (the engine holds a {!disabled} one
    when tracing is off) so instrumentation sites are uniform. Every
    emitter checks {!enabled} before allocating anything: with tracing
    disabled an emitter call is a load and a branch, and simulated
    cycle counts are bit-identical to an uninstrumented run. *)

type config = { capacity : int  (** Ring size in events; > 0. *) }

(** The per-replica phases of a synchronisation round, in protocol
    order: IPI raised -> barrier joined -> elected/moving -> caught up
    -> voted (paper Section III-B). *)
type sync_phase =
  | Ipi_wait  (** IPI raised, replica not yet at a kernel entry. *)
  | Gather_wait  (** Logical time published; waiting for the others. *)
  | Chase  (** LC follower running to the leader's event count. *)
  | Catchup  (** CC follower breakpointing to the leader's position. *)
  | Pmu_catchup  (** CC fast catch-up: running to a PMU overflow. *)
  | Vote_wait  (** Arrived at the final barrier; waiting for the vote. *)
  | Rendezvous  (** Parked at an FT-operation rendezvous. *)

val sync_phase_name : sync_phase -> string

type body =
  | Phase_begin of sync_phase
  | Phase_end of sync_phase
  | Round_begin of int  (** Machine scope; argument is the round seq. *)
  | Round_end of int
  | Syscall of { num : int; name : string; cost : int }
      (** Kernel entry/exit: dispatch of one syscall, [cost] cycles. *)
  | Preempt of { tid : int }  (** Preemption-tick context switch. *)
  | Fault of { kind : string }  (** Kernel fault handling. *)
  | Bp_fire  (** Debug unit: global instruction breakpoint hit. *)
  | Single_step  (** Catch-up stepped past the breakpoint (resume flag). *)
  | Rep_step  (** Rep-string step-past before publishing (Sec. III-D). *)
  | Vm_exit  (** Hypervisor crossing when the stack runs virtualised. *)
  | Ipi of { target : int }  (** Machine scope: IPI raised to a core. *)
  | Dev_irq of { dpn : int }  (** Machine scope: device IRQ accepted. *)
  | Bus_stall of { cycles : int }
      (** A run of cycles the core spent without a bus token. *)
  | Vote of { count : int; c0 : int; c1 : int; agree : bool }
      (** A signature vote: the replica's three words and the outcome. *)
  | Injection of { addr : int; bit : int }  (** Fault-injector flip. *)
  | Downgrade of { rid : int; cost : int }  (** TMR->DMR masking span. *)
  | Reintegrate of { rid : int; cost : int }  (** Re-admission span. *)
  | Checkpoint of { words : int; skipped : int; cost : int }
      (** Machine scope: verified-checkpoint capture span. [words] is
          what the capture copied; [skipped] is what an incremental
          capture avoided copying (0 for a full capture). *)
  | Rollback of { to_cycle : int; cost : int }
      (** Machine scope: recovery rewind to the checkpoint captured at
          [to_cycle]; [cost] is the state-restore stall charged. *)
  | Ingress_drop of { id : int; expect : int; got : int }
      (** Machine scope: an RX frame failed ingress-checksum
          verification at consume and was dropped/NACKed for client
          retransmission. [id] is the request sequence id parsed from
          the (corrupt) frame, or [-1] when unparseable; [expect]/[got]
          are the enqueue-time and recomputed checksums. *)
  | Replay_cut of { seq : int }
      (** Machine scope: replay detection closed chunk [seq] at this
          cycle and queued it for verification. *)
  | Replay_verdict of { seq : int; chunk_end : int; lag : int; ok : bool }
      (** Machine scope: chunk [seq]'s replay verdict was processed.
          [chunk_end] is the cycle the chunk's execution completed on
          the primary; [lag] is the detection lag ([ts - chunk_end]) —
          the window during which a fault inside the chunk was present
          but undetected. *)

type event = {
  ts : int;  (** Machine cycle at emission. *)
  rid : int;  (** Replica/core id, or [-1] for machine-scope events. *)
  body : body;
}

type t

val create : config -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val disabled : unit -> t
(** A trace that records nothing; emitters return immediately. *)

val enabled : t -> bool
val capacity : t -> int

val set_clock : t -> (unit -> int) -> unit
(** Install the timestamp source (the machine's cycle counter).
    {!Rcoe_machine.Machine.create} does this automatically. *)

val now : t -> int
(** The clock's current value (0 before [set_clock]). *)

(** {2 Per-replica child traces}

    The parallel engine gives each replica a child trace so replicas can
    emit events concurrently from separate domains without racing on the
    shared ring. Outside an execution window a child simply forwards
    every event to its root using the root's clock — bit-identical to
    emitting on the root directly, which is why the sequential engine
    can route replica-scope events through children unconditionally.
    Inside a window the engine calls {!begin_buffering} with the
    worker's private cycle counter, the child accumulates events
    locally, and the window barrier drains all children with
    {!end_buffering} and commits them with {!merge_buffered}. *)

val child : t -> t
(** [child root] creates a forwarding child of [root]. The child shares
    [root]'s enabled flag and owns no ring of its own. Raises
    [Invalid_argument] if [root] is itself a child (children do not
    nest). *)

val begin_buffering : t -> clock:(unit -> int) -> unit
(** Switch a child to window-local buffering: subsequent events are held
    in the child, timestamped by [clock]. Raises [Invalid_argument] on a
    non-child trace. *)

val end_buffering : t -> event list
(** Stop buffering and return the held events, oldest first. The child
    reverts to forwarding mode. *)

val merge_buffered : t -> event list array -> unit
(** [merge_buffered root bufs] commits per-replica window buffers
    (indexed by replica id, each timestamp-ordered) into [root]'s ring:
    a stable k-way merge by timestamp, ties resolving to the lower
    replica index — exactly the event order the sequential engine's
    replica stepping loop would have produced. *)

(** {2 Emitters} — all no-ops (and allocation-free) when disabled. *)

val phase_begin : t -> rid:int -> sync_phase -> unit
val phase_end : t -> rid:int -> sync_phase -> unit
val round_begin : t -> seq:int -> unit
val round_end : t -> seq:int -> unit
val syscall : t -> rid:int -> num:int -> name:string -> cost:int -> unit
val preempt : t -> rid:int -> tid:int -> unit
val fault : t -> rid:int -> kind:string -> unit
val bp_fire : t -> rid:int -> unit
val single_step : t -> rid:int -> unit
val rep_step : t -> rid:int -> unit
val vm_exit : t -> rid:int -> unit
val ipi : t -> target:int -> unit
val dev_irq : t -> dpn:int -> unit
val bus_stall : t -> rid:int -> cycles:int -> unit
val vote : t -> rid:int -> count:int -> c0:int -> c1:int -> agree:bool -> unit
val downgrade : t -> rid:int -> cost:int -> unit
val reintegrate : t -> rid:int -> cost:int -> unit
val checkpoint : t -> words:int -> skipped:int -> cost:int -> unit
val rollback : t -> to_cycle:int -> cost:int -> unit
val ingress_drop : t -> id:int -> expect:int -> got:int -> unit

val replay_cut : t -> seq:int -> unit

val replay_verdict :
  t -> seq:int -> chunk_end:int -> lag:int -> ok:bool -> unit

val injection : t -> addr:int -> bit:int -> unit
(** Also records the injection cycle (see {!last_injection}) even when
    the ring is disabled, so detection latency can be measured without
    paying for a full trace. *)

(** {2 Reading the ring} *)

val events : t -> event list
(** Oldest first. At most [capacity] events; when the ring wrapped,
    these are the newest [capacity]. *)

val events_since : t -> int -> event list
(** [events_since t n] with [n] a previously observed {!total}: the
    events emitted after that point, oldest first — O(result), not
    O(capacity), so a harness can poll incrementally from a hot loop.
    When more than [capacity] events arrived since [n], only the newest
    [capacity] survive (the caller can detect the gap by comparing
    [total t - n] with the result length). *)

val total : t -> int
(** Events emitted over the trace's lifetime (recorded + dropped). *)

val dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val last_injection : t -> int option
(** Cycle of the most recent {!injection}, if not yet consumed. *)

val clear_last_injection : t -> unit
