lib/isa/check.ml: Array Instr List Program Reg
