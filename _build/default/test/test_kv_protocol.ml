(* Direct tests of the KV server's wire protocol, driving the simulated
   NIC by hand against an unreplicated server, plus a randomized
   cross-mode integration sweep. *)

open Rcoe_machine
open Rcoe_core
open Rcoe_workloads
open Rcoe_harness

let mk_server ~mode ~n =
  let config =
    Runner.config_for ~mode ~nreplicas:n ~arch:Rcoe_machine.Arch.X86
      ~with_net:true ()
  in
  let program = Kvstore.program ~max_records:64 ~branch_count:false () in
  let sys = System.create ~config ~program in
  (sys, Option.get (System.netdev sys))

let transact sys net req =
  Netdev.inject net ~now:(System.now sys) req;
  let deadline = System.now sys + 2_000_000 in
  let rec wait () =
    System.run sys ~max_cycles:5_000;
    match Netdev.take_tx net with
    | [ (_, payload) ] -> payload
    | [] when System.now sys < deadline && System.halted sys = None -> wait ()
    | [] -> Alcotest.fail "no response"
    | _ -> Alcotest.fail "multiple responses"
  in
  wait ()

let put ~seq ~key v =
  Array.concat [ [| Kvstore.req_magic; seq; Kvstore.op_put; key |]; v ]

let get ~seq ~key = [| Kvstore.req_magic; seq; Kvstore.op_get; key |]

let scan ~seq ~key ~len = [| Kvstore.req_magic; seq; Kvstore.op_scan; key; len |]

let value k = Array.init Kvstore.vlen (fun i -> (k * 100) + i)

let test_put_get_roundtrip () =
  let sys, net = mk_server ~mode:Config.Base ~n:1 in
  let resp = transact sys net (put ~seq:1 ~key:42 (value 42)) in
  Alcotest.(check int) "put ok" 0 resp.(2);
  let resp = transact sys net (get ~seq:2 ~key:42) in
  Alcotest.(check int) "get ok" 0 resp.(2);
  Alcotest.(check int) "seq echoed" 2 resp.(1);
  Alcotest.(check (array int)) "value returned" (value 42)
    (Array.sub resp 4 Kvstore.vlen)

let test_get_missing () =
  let sys, net = mk_server ~mode:Config.Base ~n:1 in
  let resp = transact sys net (get ~seq:1 ~key:7) in
  Alcotest.(check int) "not found" 1 resp.(2)

let test_put_overwrites () =
  let sys, net = mk_server ~mode:Config.Base ~n:1 in
  ignore (transact sys net (put ~seq:1 ~key:5 (value 5)));
  ignore (transact sys net (put ~seq:2 ~key:5 (value 99)));
  let resp = transact sys net (get ~seq:3 ~key:5) in
  Alcotest.(check (array int)) "overwritten" (value 99)
    (Array.sub resp 4 Kvstore.vlen)

let test_colliding_keys_chain () =
  (* Keys congruent mod nbuckets land in one chain and must coexist. *)
  let sys, net = mk_server ~mode:Config.Base ~n:1 in
  let k1 = 3 and k2 = 3 + Kvstore.nbuckets and k3 = 3 + (2 * Kvstore.nbuckets) in
  List.iteri
    (fun i k -> ignore (transact sys net (put ~seq:i ~key:k (value k))))
    [ k1; k2; k3 ];
  List.iteri
    (fun i k ->
      let resp = transact sys net (get ~seq:(10 + i) ~key:k) in
      Alcotest.(check int) "found" 0 resp.(2);
      Alcotest.(check (array int)) "right value" (value k)
        (Array.sub resp 4 Kvstore.vlen))
    [ k1; k2; k3 ]

let test_scan_returns_first_words () =
  let sys, net = mk_server ~mode:Config.Base ~n:1 in
  for k = 0 to 5 do
    ignore (transact sys net (put ~seq:k ~key:k (value k)))
  done;
  let resp = transact sys net (scan ~seq:20 ~key:0 ~len:4) in
  Alcotest.(check int) "ok" 0 resp.(2);
  Alcotest.(check bool) "returned up to 4 entries" true
    (Array.length resp >= 4 && Array.length resp <= 4 + 4)

let test_unknown_op_rejected () =
  let sys, net = mk_server ~mode:Config.Base ~n:1 in
  let resp = transact sys net [| Kvstore.req_magic; 1; 9; 0 |] in
  Alcotest.(check int) "bad-op status" 3 resp.(2)

let test_put_get_replicated_identical () =
  (* The same transcript against LC-D must produce the same responses. *)
  let sys, net = mk_server ~mode:Config.LC ~n:2 in
  let r1 = transact sys net (put ~seq:1 ~key:11 (value 11)) in
  let r2 = transact sys net (get ~seq:2 ~key:11) in
  Alcotest.(check int) "put ok" 0 r1.(2);
  Alcotest.(check (array int)) "value" (value 11) (Array.sub r2 4 Kvstore.vlen);
  Alcotest.(check bool) "no halt" true (System.halted sys = None)

(* Randomized cross-mode sweep: any (mode, workload, seed) combination
   must complete without corruption, client errors, or halts. *)
let test_random_sweep () =
  let rng = Rcoe_util.Rng.create 20260706 in
  for _ = 1 to 6 do
    let mode, n =
      match Rcoe_util.Rng.int rng 5 with
      | 0 -> (Config.Base, 1)
      | 1 -> (Config.LC, 2)
      | 2 -> (Config.LC, 3)
      | 3 -> (Config.CC, 2)
      | _ -> (Config.CC, 3)
    in
    let wl =
      List.nth [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.E; Ycsb.F ]
        (Rcoe_util.Rng.int rng 6)
    in
    let seed = 1 + Rcoe_util.Rng.int rng 1000 in
    let config =
      Runner.config_for ~mode ~nreplicas:n ~arch:Rcoe_machine.Arch.X86
        ~with_net:true ~seed ()
    in
    let res =
      Kv_run.run ~config ~workload:wl ~records:30 ~operations:60
        ~gen_seed:(seed * 3) ()
    in
    let c = res.Kv_run.counters in
    let label =
      Printf.sprintf "%s YCSB-%s seed=%d" (Config.replicas_label config)
        (Ycsb.workload_to_string wl) seed
    in
    Alcotest.(check bool) (label ^ ": no halt") true
      (System.halted res.Kv_run.sys = None);
    Alcotest.(check int) (label ^ ": completed") c.Ycsb.issued c.Ycsb.completed;
    Alcotest.(check int) (label ^ ": no corruption") 0 c.Ycsb.corrupted;
    Alcotest.(check int) (label ^ ": no errors") 0 c.Ycsb.client_errors
  done

let suite =
  [
    Alcotest.test_case "put/get roundtrip" `Quick test_put_get_roundtrip;
    Alcotest.test_case "get missing" `Quick test_get_missing;
    Alcotest.test_case "put overwrites" `Quick test_put_overwrites;
    Alcotest.test_case "colliding keys chain" `Quick test_colliding_keys_chain;
    Alcotest.test_case "scan" `Quick test_scan_returns_first_words;
    Alcotest.test_case "unknown op" `Quick test_unknown_op_rejected;
    Alcotest.test_case "replicated transcript identical" `Quick
      test_put_get_replicated_identical;
    Alcotest.test_case "random cross-mode sweep" `Slow test_random_sweep;
  ]
