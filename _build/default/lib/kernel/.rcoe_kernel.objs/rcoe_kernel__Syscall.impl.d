lib/kernel/syscall.ml: Printf
