examples/kv_replicated.ml: Config Kv_run Printf Rcoe_core Rcoe_harness Rcoe_machine Rcoe_workloads Runner System Ycsb
