lib/workloads/ycsb.mli:
