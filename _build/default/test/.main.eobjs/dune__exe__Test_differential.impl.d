test/test_differential.ml: Alcotest Asm Config Instr List Program Rcoe_core Rcoe_harness Rcoe_isa Rcoe_kernel Rcoe_machine Rcoe_util Reg Rng Runner System
