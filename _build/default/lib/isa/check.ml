let regs_used (i : Instr.t) : Reg.t list =
  let op = function Instr.Reg r -> [ r ] | Instr.Imm _ -> [] in
  match i with
  | Nop | Halt | Syscall _ | Cntinc | Fldi _ | Falu _ | Funop _ -> []
  | Mov (rd, o) -> rd :: op o
  | La (rd, _) -> [ rd ]
  | Alu (_, rd, rs, o) -> rd :: rs :: op o
  | Not (rd, rs) -> [ rd; rs ]
  | Ld (rd, rs, _) -> [ rd; rs ]
  | St (rbase, rs, _) -> [ rbase; rs ]
  | Push r -> [ r; Reg.sp ]
  | Pop r -> [ r; Reg.sp ]
  | B (_, r, o, _) -> r :: op o
  | Jmp _ -> []
  | Jal _ -> [ Reg.lr ]
  | Jr r -> [ r ]
  | Ret -> [ Reg.lr ]
  | Rep_movs -> [ Reg.R0; Reg.R1; Reg.R2 ]
  | Ldex (rd, rs) -> [ rd; rs ]
  | Stex (rres, rval, raddr) -> [ rres; rval; raddr ]
  | Atomic_add (rd, raddr, o) -> rd :: raddr :: op o
  | Cas (rd, raddr, rexp, rnew) -> [ rd; raddr; rexp; rnew ]
  | Fld (_, rs, _) -> [ rs ]
  | Fst (_, rbase, _) -> [ rbase ]
  | Fb _ -> []
  | Itof (_, rs) -> [ rs ]
  | Ftoi (rd, _) -> [ rd ]

let scan p pred =
  let acc = ref [] in
  Array.iteri
    (fun addr i -> if pred i then acc := (addr, i) :: !acc)
    p.Program.code;
  List.rev !acc

let reserved_register_violations p =
  scan p (fun i ->
      (match i with Instr.Cntinc -> false | _ -> true)
      && List.exists (Reg.equal Reg.branch_counter) (regs_used i))

let exclusives p =
  scan p (function Instr.Ldex _ | Instr.Stex _ -> true | _ -> false)

let rep_strings p = scan p (function Instr.Rep_movs -> true | _ -> false)

let unresolved_targets p =
  let n = Array.length p.Program.code in
  scan p (fun i ->
      match Instr.target_of i with
      | None -> false
      | Some (Instr.Lbl _) -> true
      | Some (Instr.Abs a) -> a < 0 || a >= n)
