lib/rcoe/signature.mli: Rcoe_machine
