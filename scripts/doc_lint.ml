(* Documentation hygiene linter, wired as `dune build @doc-lint`.

   odoc is not a build dependency of this project (see README
   "Documentation"), so this self-contained pass checks the properties
   a `dune build @doc` run would: every `{!reference}` in a doc comment
   must name a module that exists in the tree (a library wrapper like
   [Rcoe_obs] or a compilation unit like [Config]), references must be
   non-empty, braces inside doc comments must balance, and every
   interface file must carry at least one odoc comment — a bare `.mli`
   is a public surface with no documentation at all. Exits non-zero
   listing every offence as file:line. *)

let wrappers =
  [
    "Rcoe_util"; "Rcoe_obs"; "Rcoe_checksum"; "Rcoe_isa"; "Rcoe_machine";
    "Rcoe_kernel"; "Rcoe_core"; "Rcoe_faults"; "Rcoe_workloads";
    "Rcoe_harness";
  ]

(* Stdlib modules it is reasonable for doc comments to reference. *)
let stdlib = [ "Domain"; "List"; "Array"; "Printf"; "Sys"; "Stdlib" ]

let rec walk dir f =
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then walk path f else f path)
    (Sys.readdir dir)

let errors = ref 0

let err path line fmt =
  Printf.ksprintf
    (fun s ->
      incr errors;
      Printf.eprintf "%s:%d: %s\n" path line s)
    fmt

(* The first path component of a reference payload, with any
   `kind:`/`kind-` annotation (e.g. {!type:...}, {!val:...}) and a
   leading quiet-reference `:` stripped. *)
let root_of payload =
  let payload =
    match String.index_opt payload ':' with
    | Some i -> String.sub payload (i + 1) (String.length payload - i - 1)
    | None -> payload
  in
  match String.index_opt payload '.' with
  | Some i -> String.sub payload 0 i
  | None -> payload

let check_refs ~known path line_no line =
  let n = String.length line in
  let i = ref 0 in
  while !i + 1 < n do
    if line.[!i] = '{' && line.[!i + 1] = '!' then begin
      let stop = try String.index_from line (!i + 2) '}' with Not_found -> -1 in
      if stop < 0 then
        err path line_no "unterminated {!reference} in doc comment"
      else begin
        let payload = String.sub line (!i + 2) (stop - !i - 2) in
        if String.trim payload = "" then
          err path line_no "empty {!} reference"
        else begin
          (* Only qualified paths get their root checked: a bare
             capitalized name may be a constructor or exception in
             scope, which odoc resolves without a module prefix. *)
          let trimmed = String.trim payload in
          let root = root_of trimmed in
          if
            String.contains trimmed '.'
            && root <> ""
            && root.[0] >= 'A'
            && root.[0] <= 'Z'
            && not (List.mem root known)
          then
            err path line_no
              "{!%s}: no module named %s in the tree (typo, or a \
               renamed module?)"
              payload root
        end;
        i := stop
      end
    end;
    incr i
  done

(* Brace balance over the whole file's doc comments. Code braces
   (records, [{ ... }] inline code) do not occur unbalanced in legal
   OCaml interfaces, so a file-level imbalance inside comments is a
   broken odoc markup construct. *)
let check_comment_braces path content =
  let n = String.length content in
  let depth = ref 0 and line = ref 1 and in_comment = ref 0 in
  let open_line = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then incr line;
      if i + 1 < n then begin
        if c = '(' && content.[i + 1] = '*' then incr in_comment;
        if c = '*' && content.[i + 1] = ')' && !in_comment > 0 then
          decr in_comment
      end;
      if !in_comment > 0 then
        if c = '{' then begin
          if !depth = 0 then open_line := !line;
          incr depth
        end
        else if c = '}' then
          if !depth = 0 then
            err path !line "unmatched '}' in doc comment"
          else decr depth)
    content;
  if !depth <> 0 then
    err path !open_line "unclosed '{' in doc comment"

(* Interfaces are the documentation surface: an `.mli` with no odoc
   opener anywhere ships an undocumented public API. Implementation
   files are exempt — plain commentary there is a style choice. *)
let check_mli_documented path content =
  let n = String.length content in
  let has_doc = ref false in
  for i = 0 to n - 3 do
    if content.[i] = '(' && content.[i + 1] = '*' && content.[i + 2] = '*'
    then has_doc := true
  done;
  if not !has_doc then
    err path 1 "interface has no odoc comment (no `(**` anywhere)"

let check_file ~known path =
  let ic = open_in_bin path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if Filename.check_suffix path ".mli" then check_mli_documented path content;
  check_comment_braces path content;
  let line_no = ref 0 in
  String.split_on_char '\n' content
  |> List.iter (fun line ->
         incr line_no;
         check_refs ~known path !line_no line)

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lib" in
  let units = ref [] in
  walk root (fun path ->
      if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
      then begin
        let base = Filename.remove_extension (Filename.basename path) in
        let unit_ = String.capitalize_ascii base in
        if not (List.mem unit_ !units) then units := unit_ :: !units
      end);
  let known = wrappers @ stdlib @ !units in
  let files = ref [] in
  walk root (fun path ->
      if Filename.check_suffix path ".mli" || Filename.check_suffix path ".ml"
      then files := path :: !files);
  List.iter (check_file ~known) (List.sort compare !files);
  if !errors > 0 then begin
    Printf.eprintf "doc-lint: %d problem(s)\n" !errors;
    exit 1
  end;
  Printf.printf "doc-lint: ok (%d compilation units scanned)\n"
    (List.length !files)
