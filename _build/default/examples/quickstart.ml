(* Quickstart: write a tiny program with the assembler eDSL, run it
   unreplicated, then triple-modular-redundant under LC-RCoE, and compare.

     dune exec examples/quickstart.exe *)

open Rcoe_isa
open Rcoe_core
open Rcoe_harness

(* A program that sums the first 100,000 integers, publishes the result
   into the replication signature, prints "done", and exits. *)
let program =
  let a = Asm.create "quickstart" in
  let open Reg in
  Asm.space a "result" 1;
  Asm.label a "main";
  Asm.movi a R4 0;
  (* accumulator *)
  Asm.for_up a R5 ~start:1 ~stop:(Instr.Imm 100_001) (fun () ->
      Asm.add a R4 R4 R5);
  Asm.la a R6 "result";
  Asm.st a R6 R4 0;
  (* Critical output goes into the state signature: if any replica
     computed a different sum, the replicas' votes will catch it. *)
  Asm.la a R0 "result";
  Asm.movi a R1 1;
  Asm.syscall a Rcoe_kernel.Syscall.sys_ft_add_trace;
  List.iter
    (fun c ->
      Asm.movi a R0 (Char.code c);
      Asm.syscall a Rcoe_kernel.Syscall.sys_putchar)
    [ 'd'; 'o'; 'n'; 'e' ];
  Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  Asm.assemble ~entry:"main" a

let run_with label config =
  let r = Runner.run_program ~config ~program () in
  let sum =
    Rcoe_kernel.Kernel.read_user
      (System.kernel r.Runner.sys 0)
      ~va:(Program.data_addr program "result")
  in
  Printf.printf "%-18s %8d cycles   sum=%d   output=%S   sync rounds=%d\n"
    label r.Runner.cycles sum
    (System.output r.Runner.sys 0)
    r.Runner.stats.System.rounds

let () =
  Printf.printf "quickstart: 1 + 2 + ... + 100000 (expected %d)\n\n"
    (100_000 * 100_001 / 2);
  run_with "unreplicated:"
    (Runner.config_for ~mode:Config.Base ~nreplicas:1
       ~arch:Rcoe_machine.Arch.X86 ());
  run_with "LC-RCoE TMR:"
    (Runner.config_for ~mode:Config.LC ~nreplicas:3 ~arch:Rcoe_machine.Arch.X86
       ());
  run_with "CC-RCoE TMR:"
    (Runner.config_for ~mode:Config.CC ~nreplicas:3 ~arch:Rcoe_machine.Arch.X86
       ());
  Printf.printf
    "\nAll three agree; the replicated runs synchronised at every timer\n\
     tick and voted on their state signatures without the program having\n\
     to know it was replicated.\n"
