lib/kernel/kernel.ml: Arch Array Buffer Char Context Core Hashtbl Layout Machine Mem Option Page_table Printf Queue Rcoe_isa Rcoe_machine Syscall
