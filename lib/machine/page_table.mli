(** Page tables stored in simulated physical memory.

    Each address space owns a flat array of page-table entries (one word
    per virtual page) living at [table.base] in physical memory. Keeping
    the entries *in* simulated memory is load-bearing: the fault-injection
    experiments flip bits in kernel memory, and a corrupted PTE must
    really cause a wrong translation, a protection fault, or a physical
    abort — as it does on the paper's hardware.

    PTE word layout:
    - bit 0: valid
    - bit 1: writable
    - bit 2: DMA buffer mark (the "unused page-table bit" x86 error
      masking uses to find DMA mappings when the primary is removed;
      the 32-bit Arm profile has no such spare bit, so masking is
      unsupported there — Section IV-A)
    - bit 3: device page (accesses are MMIO, not RAM)
    - bit 4: dirty mirror (spare software bit; see below)
    - bits 8+: physical page number (or device page id)

    Bit 4 is the same kind of spare page-table bit the paper's x86
    masking path uses for DMA marks: {!mirror_dirty} copies {!Mem}'s
    per-physical-page dirty flags into it so tooling can inspect write
    tracking through the paging structures. {!encode}/{!decode} ignore
    the bit — re-encoding an entry (as {!set} does) clears the mirror,
    exactly like rebuilding a PTE on real hardware. *)

type pte = {
  valid : bool;
  writable : bool;
  dma : bool;
  device : bool;
  ppn : int;
}

val invalid_pte : pte

val encode : pte -> int
val decode : int -> pte

val page_shift : int
(** 8: pages are 256 words (re-exported from {!Mem.page_shift}, the
    single source of truth — [Mem] owns it because it cannot depend on
    this module). *)

val page_size : int

type table = {
  base : int;  (** Physical address of the PTE array. *)
  npages : int;  (** Number of virtual pages covered. *)
}

val table_words : table -> int
(** Physical footprint of the table ([npages]). *)

val set : Mem.t -> table -> vpn:int -> pte -> unit
(** Raises [Invalid_argument] if [vpn] is out of the covered range. *)

val get : Mem.t -> table -> vpn:int -> pte

val clear : Mem.t -> table -> unit

val dirty_bit : int
(** The spare bit's mask (16). *)

val set_dirty : Mem.t -> table -> vpn:int -> unit
(** Raw-word OR of {!dirty_bit} into the PTE; raises
    [Invalid_argument] on a bad [vpn]. *)

val is_dirty : Mem.t -> table -> vpn:int -> bool

val clear_all_dirty : Mem.t -> table -> unit
(** Strip {!dirty_bit} from every entry. *)

val mirror_dirty : Mem.t -> table -> int
(** Set {!dirty_bit} on every valid non-device entry whose mapped
    physical page is dirty in [mem]'s write-tracking bitmap; returns
    the number of entries newly marked. Invalid or device entries are
    left untouched. *)

type resolution =
  | Phys of int  (** RAM physical word address. *)
  | Device of int * int  (** Device page id, word offset within page. *)
  | No_mapping
  | Not_writable

val translate : Mem.t -> table -> vaddr:int -> write:bool -> resolution
(** Walk the table (reads simulated memory; can raise {!Mem.Abort} if
    the table base itself is corrupt). A garbage frame number is returned
    as-is in [Phys]; the subsequent physical access will abort, which the
    kernel reports as a kernel data abort. *)

val vpn_of : int -> int
val offset_of : int -> int
