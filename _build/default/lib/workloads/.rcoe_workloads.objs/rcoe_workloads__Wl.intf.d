lib/workloads/wl.mli: Asm Program Rcoe_isa Rcoe_machine
