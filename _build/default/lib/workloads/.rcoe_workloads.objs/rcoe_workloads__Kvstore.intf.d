lib/workloads/kvstore.mli: Rcoe_isa
