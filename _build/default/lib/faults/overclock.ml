open Rcoe_util
open Rcoe_kernel

type event =
  | Burst of (int * int) list
  | Reg_burst of int
  | Reboot
  | Irq_loss

let event_to_string = function
  | Burst fs -> Printf.sprintf "burst(%d flips)" (List.length fs)
  | Reg_burst rid -> Printf.sprintf "reg-burst(r%d)" rid
  | Reboot -> "reboot"
  | Irq_loss -> "irq-loss"

type t = { rng : Rng.t; lay : Layout.t; active_user : int -> int }

let create ?active_user ~seed lay =
  let default rid = lay.Layout.partitions.(rid).Layout.user_words in
  { rng = Rng.create seed; lay; active_user = Option.value ~default active_user }

(* Bias toward user memory: timing-marginal circuitry is exercised most
   by the hot user-mode code paths. *)
let pick_focus t =
  let lay = t.lay in
  let r = Rng.int t.rng 100 in
  if r < 75 then begin
    let rid = Rng.int t.rng lay.Layout.nreplicas in
    let p = lay.Layout.partitions.(rid) in
    let live = max Layout.page_size (min (t.active_user rid) p.Layout.user_words) in
    p.Layout.user_base + Rng.int t.rng live
  end
  else if r < 97 then begin
    let rid = Rng.int t.rng lay.Layout.nreplicas in
    let p = lay.Layout.partitions.(rid) in
    p.Layout.p_base + Rng.int t.rng (p.Layout.user_base - p.Layout.p_base)
  end
  else lay.Layout.shared.Layout.s_base + Rng.int t.rng lay.Layout.shared.Layout.s_words

let step t mem =
  let roll = Rng.int t.rng 1000 in
  if roll < 2 then Reboot
  else if roll < 5 then Irq_loss
  else if roll < 550 then Reg_burst (Rng.int t.rng t.lay.Layout.nreplicas)
  else begin
    let nflips = if roll < 700 then 1 else 2 + Rng.int t.rng 5 in
    let focus = pick_focus t in
    let flips =
      List.init nflips (fun _ ->
          let addr =
            let a = focus + Rng.int t.rng 64 - 32 in
            max 0 (min a (Rcoe_machine.Mem.size mem - 1))
          in
          let bit = Rng.int t.rng 32 in
          Rcoe_machine.Mem.flip_bit mem ~addr ~bit;
          (addr, bit))
    in
    Burst flips
  end
