(** Shared memory bus with bounded bandwidth.

    Cores acquire one credit per word transferred; credits refill at
    [rate] per global cycle up to a small burst allowance. A core that
    cannot acquire a credit stalls for that cycle and retries — this is
    what makes replicas of a memory-bound program contend, reproducing the
    Table V result that DMR/TMR divide the observable memory bandwidth on
    a machine whose single core can already saturate the bus. *)

type t

val create : rate:float -> t
(** [rate] is in word-transfers per cycle. Burst allowance is fixed at
    4 credits. *)

val tick : t -> unit
(** Advance one global cycle (refill credits). *)

val advance : t -> cycles:int -> unit
(** [advance t ~cycles] applies {!tick} exactly [cycles] times. Used by
    the parallel engine to catch a per-core lane up to a window
    boundary with bit-identical credit state to a sequential run (the
    refill is floating-point, so a closed form would diverge). *)

val try_acquire : t -> int -> bool
(** [try_acquire t n] takes [n] credits if available. *)

val rate : t -> float

val utilisation : t -> float
(** Fraction of offered credits consumed since creation (diagnostic). *)

type state
(** The lane's mutable credit/accounting state at a point in time. *)

val state : t -> state
(** Capture the lane's state. Replay checkers save this at a chunk cut:
    credit refill is floating-point and path-dependent, so a shadow
    machine must restart from the exact saved values to stay
    cycle-identical with the primary. *)

val set_state : t -> state -> unit
(** Restore a previously captured state. *)
