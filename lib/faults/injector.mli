(** Software fault injection (paper Section V-C).

    The paper injects single-bit flips from a spare core; here the
    injector flips bits in simulated physical memory between simulation
    steps, and into saved user contexts through the engine's after-save
    hook (the paper's method for register faults: "on an interrupt, the
    kernel preempts the running thread and saves its context; we pick a
    random bit in the saved user register state and flip it").

    Target pools reproduce the paper's two memory campaigns:
    - x86 (Table VII left): kernel memory of every replica, the shared
      framework region, and the *primary's* user memory;
    - Arm (Table VII right): all replicas' memory.

    The DMA region can be included to exercise the
    outside-the-sphere-of-replication hole. *)

type region = { r_base : int; r_words : int; r_name : string }

val kernel_regions : Rcoe_kernel.Layout.t -> region list
(** Page tables, contexts, signatures of every replica + shared region. *)

val user_region : Rcoe_kernel.Layout.t -> rid:int -> region

val all_replica_regions : Rcoe_kernel.Layout.t -> region list
(** Kernel + user of every replica + shared region. *)

val dma_region : Rcoe_kernel.Layout.t -> region

val x86_campaign : Rcoe_kernel.Layout.t -> region list
(** Kernel of all replicas + shared + primary user + DMA. *)

val arm_campaign : Rcoe_kernel.Layout.t -> region list
(** Everything (all replicas + shared + DMA). *)

val active_user_region :
  Rcoe_kernel.Layout.t -> rid:int -> used_words:int -> region
(** Like {!user_region} but restricted to the frames actually allocated
    (live data, stacks), so small scaled-down workloads see fault rates
    comparable to the paper's fully-populated memory. *)

val x86_active_campaign :
  Rcoe_kernel.Layout.t -> used_words:(int -> int) -> region list

val arm_active_campaign :
  Rcoe_kernel.Layout.t -> used_words:(int -> int) -> region list

type t

val create : ?trace:Rcoe_obs.Trace.t -> seed:int -> region list -> t
(** With [trace], every flip is recorded as an injection event (and
    marks the detection-latency clock — see
    {!Rcoe_obs.Trace.last_injection}). Regions are sorted by base
    address internally, so the flip sequence for a given (seed, region
    set) is reproducible regardless of list construction order. *)

val flip_one : t -> Rcoe_machine.Mem.t -> int * int * string
(** Flip a uniformly chosen bit (bits 0–31, as the paper flips bits in
    32/64-bit words of real memory) in a uniformly chosen word of the
    pools; returns (address, bit, region name). *)

val flips : t -> int
(** Total flips injected so far. *)

val reg_flip_hook :
  ?trace:Rcoe_obs.Trace.t ->
  seed:int ->
  only_rid:int ->
  armed:bool ref ->
  count:int ref ->
  Rcoe_machine.Mem.t ->
  rid:int -> tid:int -> ctx_addr:int -> unit
(** After-save hook flipping one bit in the saved integer registers or
    instruction pointer of replica [only_rid]'s preempted thread, each
    time [armed] is true (the hook resets it and increments [count]). *)
