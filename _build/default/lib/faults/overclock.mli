(** Overclocking fault model (paper Section V-C3, Table IX).

    Overclocking "is more likely to cause multiple faults in the same
    circuitry within a short period" — a much more pessimistic scenario
    than independent SEUs. The model injects correlated *bursts*:
    clusters of bit flips within a small window of nearby words, heavily
    biased toward user memory (the paper observes user-mode errors
    dominating), with occasional catastrophic events — a spontaneous
    reboot or a wedged interrupt path (which the client observes as an
    unresponsive system / network exception). *)

type event =
  | Burst of (int * int) list  (** (address, bit) flips applied. *)
  | Reg_burst of int
      (** Corrupt in-flight CPU state of the given replica: the harness
          arms a register flip at the next context save. Overclocking
          stresses the core's timing paths first, so these dominate. *)
  | Reboot  (** Catastrophic: the whole system resets. *)
  | Irq_loss  (** NIC wedged; the system goes quiet. *)

val event_to_string : event -> string

type t

val create :
  ?active_user:(int -> int) -> seed:int -> Rcoe_kernel.Layout.t -> t
(** [active_user rid] bounds each replica's user-area focus to its live
    words (defaults to the whole user area). *)

val step : t -> Rcoe_machine.Mem.t -> event
(** Inject one overclocking event (flips are applied before return;
    [Reboot]/[Irq_loss] are for the harness to enact). *)
