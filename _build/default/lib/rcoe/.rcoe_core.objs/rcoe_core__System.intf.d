lib/rcoe/system.mli: Config Rcoe_isa Rcoe_kernel Rcoe_machine
