lib/kernel/context.mli: Rcoe_machine
