test/test_stats.ml: Alcotest Gen List QCheck QCheck_alcotest Rcoe_util Stats
