lib/isa/check.mli: Instr Program Reg
