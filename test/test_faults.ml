open Rcoe_machine
open Rcoe_kernel
open Rcoe_faults

let lay3 = Layout.compute ~nreplicas:3 ~user_words:4096

(* --- Injector regions ------------------------------------------------- *)

let test_kernel_regions_cover_kernel_only () =
  let regions = Injector.kernel_regions lay3 in
  Alcotest.(check int) "3 kernels + shared" 4 (List.length regions);
  List.iteri
    (fun i r ->
      if i < 3 then begin
        let p = lay3.Layout.partitions.(i) in
        Alcotest.(check int) "starts at partition" p.Layout.p_base r.Injector.r_base;
        Alcotest.(check int) "ends at user" (p.Layout.user_base - p.Layout.p_base)
          r.Injector.r_words
      end)
    regions

let test_flips_stay_in_pools () =
  let mem = Mem.create lay3.Layout.total_words in
  let inj = Injector.create ~seed:7 (Injector.x86_campaign lay3) in
  for _ = 1 to 500 do
    let addr, bit, _name = Injector.flip_one inj mem in
    Alcotest.(check bool) "bit range" true (bit >= 0 && bit < 32);
    let where = Layout.partition_of_addr lay3 addr in
    let ok =
      match where with
      | `Shared | `Dma -> true
      | `Replica r -> (
          let p = lay3.Layout.partitions.(r) in
          (* x86 campaign: kernel region of any replica, or primary user *)
          addr < p.Layout.user_base || r = 0)
      | `Outside -> false
    in
    Alcotest.(check bool) "address in campaign" true ok
  done;
  Alcotest.(check int) "counted" 500 (Injector.flips inj)

let test_flip_actually_flips () =
  let mem = Mem.create lay3.Layout.total_words in
  let inj = Injector.create ~seed:3 (Injector.arm_campaign lay3) in
  let addr, bit, _ = Injector.flip_one inj mem in
  Alcotest.(check int) "bit set" (1 lsl bit) (Mem.read mem addr)

let test_injector_deterministic () =
  let mem1 = Mem.create lay3.Layout.total_words in
  let mem2 = Mem.create lay3.Layout.total_words in
  let i1 = Injector.create ~seed:42 (Injector.arm_campaign lay3) in
  let i2 = Injector.create ~seed:42 (Injector.arm_campaign lay3) in
  for _ = 1 to 50 do
    let a1, b1, _ = Injector.flip_one i1 mem1 in
    let a2, b2, _ = Injector.flip_one i2 mem2 in
    Alcotest.(check (pair int int)) "same sequence" (a1, b1) (a2, b2)
  done

let test_injector_order_independent () =
  (* Regions are sorted at [create]: the flip sequence depends only on
     the (seed, region set), not on how the caller built the list. *)
  let mem1 = Mem.create lay3.Layout.total_words in
  let mem2 = Mem.create lay3.Layout.total_words in
  let regions = Injector.arm_campaign lay3 in
  let i1 = Injector.create ~seed:42 regions in
  let i2 = Injector.create ~seed:42 (List.rev regions) in
  for _ = 1 to 50 do
    let a1, b1, _ = Injector.flip_one i1 mem1 in
    let a2, b2, _ = Injector.flip_one i2 mem2 in
    Alcotest.(check (pair int int)) "order-independent" (a1, b1) (a2, b2)
  done

let test_active_user_region_clamped () =
  let r = Injector.active_user_region lay3 ~rid:1 ~used_words:512 in
  Alcotest.(check int) "base" lay3.Layout.partitions.(1).Layout.user_base
    r.Injector.r_base;
  Alcotest.(check int) "clamped to used" 512 r.Injector.r_words;
  let huge = Injector.active_user_region lay3 ~rid:1 ~used_words:10_000_000 in
  Alcotest.(check int) "clamped to partition"
    lay3.Layout.partitions.(1).Layout.user_words huge.Injector.r_words

let test_injector_rejects_empty () =
  Alcotest.(check bool) "raises" true
    (try ignore (Injector.create ~seed:1 []); false
     with Invalid_argument _ -> true)

(* --- reg_flip_hook ----------------------------------------------------- *)

let test_reg_flip_hook_one_shot () =
  let mem = Mem.create 256 in
  let armed = ref true and count = ref 0 in
  let hook = Injector.reg_flip_hook ~seed:5 ~only_rid:0 ~armed ~count mem in
  hook ~rid:1 ~tid:0 ~ctx_addr:0;
  Alcotest.(check int) "wrong rid ignored" 0 !count;
  Alcotest.(check bool) "still armed" true !armed;
  hook ~rid:0 ~tid:0 ~ctx_addr:0;
  Alcotest.(check int) "fired" 1 !count;
  Alcotest.(check bool) "disarmed" false !armed;
  hook ~rid:0 ~tid:0 ~ctx_addr:0;
  Alcotest.(check int) "one-shot" 1 !count;
  (* Exactly one bit set in the register/ip area. *)
  let popcount = ref 0 in
  for i = 0 to Layout.ctx_words - 1 do
    let w = Mem.read mem i in
    let rec bits x = if x = 0 then 0 else (x land 1) + bits (x lsr 1) in
    popcount := !popcount + bits w
  done;
  Alcotest.(check int) "exactly one bit flipped" 1 !popcount

(* --- Outcome ------------------------------------------------------------ *)

let test_outcome_controlled_classes () =
  let open Outcome in
  List.iter
    (fun (o, expect) ->
      Alcotest.(check bool) (to_string o) expect (controlled o))
    [
      (No_error, true); (Masked, true); (Recovered, true);
      (Barrier_timeout, true);
      (Signature_mismatch, true); (Ycsb_corruption, false);
      (Ycsb_error, false); (User_mem_fault, false); (Kernel_exception, false);
      (System_reboot, false);
    ]

let test_outcome_tally () =
  let t = Outcome.tally_create () in
  Outcome.tally_add t Outcome.Masked;
  Outcome.tally_add t Outcome.Masked;
  Outcome.tally_add t Outcome.Ycsb_error;
  Alcotest.(check int) "get" 2 (Outcome.tally_get t Outcome.Masked);
  Alcotest.(check int) "total" 3 (Outcome.tally_total t);
  Alcotest.(check int) "controlled" 2 (Outcome.tally_controlled t);
  Alcotest.(check int) "uncontrolled" 1 (Outcome.tally_uncontrolled t)

(* --- Overclock ------------------------------------------------------------ *)

let test_overclock_deterministic () =
  let mem1 = Mem.create lay3.Layout.total_words in
  let mem2 = Mem.create lay3.Layout.total_words in
  let o1 = Overclock.create ~seed:9 lay3 in
  let o2 = Overclock.create ~seed:9 lay3 in
  for _ = 1 to 40 do
    Alcotest.(check string) "same events"
      (Overclock.event_to_string (Overclock.step o1 mem1))
      (Overclock.event_to_string (Overclock.step o2 mem2))
  done

let test_overclock_produces_all_kinds () =
  let mem = Mem.create lay3.Layout.total_words in
  let o = Overclock.create ~seed:123 lay3 in
  let bursts = ref 0 and regs = ref 0 and reboots = ref 0 and irqs = ref 0 in
  for _ = 1 to 3000 do
    match Overclock.step o mem with
    | Overclock.Burst _ -> incr bursts
    | Overclock.Reg_burst _ -> incr regs
    | Overclock.Reboot -> incr reboots
    | Overclock.Irq_loss -> incr irqs
  done;
  Alcotest.(check bool) "mem bursts occur" true (!bursts > 500);
  Alcotest.(check bool) "reg bursts dominate mem slightly" true (!regs > 1000);
  Alcotest.(check bool) "reboots rare" true (!reboots > 0 && !reboots < 40);
  Alcotest.(check bool) "irq loss rare" true (!irqs > 0 && !irqs < 60)

let test_overclock_respects_active_user () =
  (* With a tiny active-user bound, user-focused flips must stay within
     (focus - 32 .. focus + 32) of the first active page. *)
  let mem = Mem.create lay3.Layout.total_words in
  let o = Overclock.create ~active_user:(fun _ -> 256) ~seed:77 lay3 in
  for _ = 1 to 200 do
    match Overclock.step o mem with
    | Overclock.Burst flips ->
        List.iter
          (fun (addr, _) ->
            match Layout.partition_of_addr lay3 addr with
            | `Replica r ->
                let p = lay3.Layout.partitions.(r) in
                if addr >= p.Layout.user_base then
                  Alcotest.(check bool) "within active window" true
                    (addr < p.Layout.user_base + 256 + 32)
            | `Shared | `Dma | `Outside -> ())
          flips
    | _ -> ()
  done

(* End-to-end: a fault trial through the harness produces a classifiable
   outcome deterministically. *)
let test_trial_deterministic () =
  let t1 = Rcoe_harness.Fault_experiments.one_trial_for_debug
      ~mode:Rcoe_core.Config.LC ~n:2 ~seed:93 in
  let t2 = Rcoe_harness.Fault_experiments.one_trial_for_debug
      ~mode:Rcoe_core.Config.LC ~n:2 ~seed:93 in
  Alcotest.(check bool) "same outcome" true (fst t1 = fst t2);
  Alcotest.(check int) "same flip count" (snd t1) (snd t2)

let suite =
  [
    Alcotest.test_case "kernel regions" `Quick test_kernel_regions_cover_kernel_only;
    Alcotest.test_case "flips stay in pools" `Quick test_flips_stay_in_pools;
    Alcotest.test_case "flip flips" `Quick test_flip_actually_flips;
    Alcotest.test_case "injector deterministic" `Quick test_injector_deterministic;
    Alcotest.test_case "injector region-order independent" `Quick
      test_injector_order_independent;
    Alcotest.test_case "active user region clamped" `Quick
      test_active_user_region_clamped;
    Alcotest.test_case "injector rejects empty" `Quick test_injector_rejects_empty;
    Alcotest.test_case "reg flip hook one-shot" `Quick test_reg_flip_hook_one_shot;
    Alcotest.test_case "outcome controlled classes" `Quick
      test_outcome_controlled_classes;
    Alcotest.test_case "outcome tally" `Quick test_outcome_tally;
    Alcotest.test_case "overclock deterministic" `Quick test_overclock_deterministic;
    Alcotest.test_case "overclock event mix" `Quick test_overclock_produces_all_kinds;
    Alcotest.test_case "overclock active-user bound" `Quick
      test_overclock_respects_active_user;
    Alcotest.test_case "fault trial deterministic" `Quick test_trial_deterministic;
  ]
