(** General-purpose and floating-point register names.

    Sixteen integer registers with Arm-flavoured conventions:
    - [R0]..[R3]: arguments / return value,
    - [R4]..[R8], [R10]..[R12]: callee-saved temporaries,
    - [R9]: reserved for the compiler-maintained branch counter when the
      program is built for compiler-assisted CC-RCoE (the paper reserves
      r9 with [--ffixed-r9]); user code must not touch it in that mode,
    - [R13]: stack pointer, [R14]: link register, [R15]: scratch.

    Eight floating-point registers [F0]..[F7]. *)

type t =
  | R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

type f = F0 | F1 | F2 | F3 | F4 | F5 | F6 | F7

val count : int
(** Number of integer registers (16). *)

val fcount : int
(** Number of float registers (8). *)

val index : t -> int
val of_index : int -> t
(** Raises [Invalid_argument] outside \[0, 15\]. *)

val findex : f -> int
val f_of_index : int -> f
(** Raises [Invalid_argument] outside \[0, 7\]. *)

val to_string : t -> string
val f_to_string : f -> string

val branch_counter : t
(** [R9], the register reserved for compiler-assisted branch counting. *)

val sp : t
(** [R13], the stack pointer. *)

val lr : t
(** [R14], the link register written by [Jal]. *)

val all : t list
val equal : t -> t -> bool
val fequal : f -> f -> bool
