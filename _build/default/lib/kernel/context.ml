open Rcoe_machine

let nregs = Rcoe_isa.Reg.count
let nfregs = Rcoe_isa.Reg.fcount

let reg_offset i = i
let ip_offset = 16
let branches_offset = 17
let cntflag_offset = 18
let freg_offset i = 20 + (2 * i)

let mask32 = 0xFFFFFFFF

let save mem ~addr (core : Core.t) =
  for i = 0 to nregs - 1 do
    Mem.write mem (addr + reg_offset i) core.regs.(i)
  done;
  Mem.write mem (addr + ip_offset) core.ip;
  Mem.write mem (addr + branches_offset) core.hw_branches;
  Mem.write mem (addr + cntflag_offset) (if core.last_was_cntinc then 1 else 0);
  for i = 0 to nfregs - 1 do
    let bits = Int64.bits_of_float core.fregs.(i) in
    Mem.write mem (addr + freg_offset i)
      (Int64.to_int (Int64.shift_right_logical bits 32));
    Mem.write mem (addr + freg_offset i + 1) (Int64.to_int bits land mask32)
  done

let restore mem ~addr (core : Core.t) =
  for i = 0 to nregs - 1 do
    core.regs.(i) <- Mem.read mem (addr + reg_offset i)
  done;
  core.ip <- Mem.read mem (addr + ip_offset);
  core.hw_branches <- Mem.read mem (addr + branches_offset);
  core.last_was_cntinc <- Mem.read mem (addr + cntflag_offset) <> 0;
  for i = 0 to nfregs - 1 do
    let hi = Mem.read mem (addr + freg_offset i) in
    let lo = Mem.read mem (addr + freg_offset i + 1) in
    let bits = Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo) in
    core.fregs.(i) <- Int64.float_of_bits bits
  done

let init mem ~addr ~entry ~sp ~arg =
  for i = 0 to Layout.ctx_words - 1 do
    Mem.write mem (addr + i) 0
  done;
  Mem.write mem (addr + reg_offset 0) arg;
  Mem.write mem (addr + reg_offset (Rcoe_isa.Reg.index Rcoe_isa.Reg.sp)) sp;
  Mem.write mem (addr + ip_offset) entry
