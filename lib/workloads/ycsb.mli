(** YCSB-style load generator (host side of the KV benchmark).

    Builds request packets for the {!Kvstore} server and validates its
    responses, playing the role of the paper's dedicated load-generator
    machines. Implements the workload mixes of YCSB A–F:

    - A: 50% read / 50% update
    - B: 95% read / 5% update
    - C: 100% read
    - D: read-latest (95% reads skewed to recent inserts / 5% inserts)
    - E: 95% short scans / 5% inserts
    - F: read-modify-write

    Requests against existing records use a hotspot distribution (80% of
    operations over 20% of the keys) standing in for YCSB's zipfian.
    Every stored value embeds a CRC-32 of its payload, exactly as the
    paper's modified client does (Section V-C1), so silent data
    corruption in the server is detected end-to-end at read time. *)

type workload = A | B | C | D | E | F

val workload_of_string : string -> workload
val workload_to_string : workload -> string

type config = {
  records : int;
  operations : int;
  seed : int;
}

type t

type counters = {
  mutable issued : int;
  mutable completed : int;
  mutable corrupted : int;  (** CRC mismatch in a returned value. *)
  mutable client_errors : int;  (** Bad status / malformed response. *)
  mutable not_found : int;
}

val create : config -> workload -> t

val load_phase_done : t -> bool
(** The generator first issues one PUT per record (the YCSB load phase),
    then the operation mix. *)

val finished : t -> bool
(** All operations issued and answered (or failed). *)

val next_request : t -> int array option
(** The next request packet, or [None] when all operations are issued.
    The caller controls pacing and outstanding-window size. *)

val on_response : t -> int array -> unit
(** Validate a response packet (sequence, status, CRC). *)

val outstanding : t -> int

val pending : t -> seq:int -> (int * int) option
(** [(op, key)] of an in-flight request, looked up by wire sequence id —
    available until {!on_response} retires it. The serving harness uses
    this to label outcome-log entries with the operation. *)

val counters : t -> counters

val value_for : t -> key:int -> version:int -> int array
(** The CRC-protected value payload (exposed for tests). *)
