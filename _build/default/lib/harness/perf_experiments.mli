(** Reproduction of the paper's performance experiments.

    Each function runs the experiment and prints a table in the shape of
    the corresponding paper table/figure, with the paper's qualitative
    expectation noted so the output is self-checking. [runs] controls
    repetitions (the paper averages 10); the default keeps bench runtime
    in minutes.

    See DESIGN.md Section 4 for the experiment index and EXPERIMENTS.md
    for recorded paper-vs-measured comparisons. *)

val e1_datarace : ?runs:int -> unit -> unit
(** Section V-A1: LC diverges on racy multithreaded code with high
    probability; CC never does. *)

val table2 : ?runs:int -> unit -> unit
(** Native Dhrystone/Whetstone across Base/LC-D/LC-T/CC-D/CC-T on both
    architectures. *)

val table3 : ?runs:int -> unit -> unit
(** Virtualised Dhrystone/Whetstone under CC-D on x86: VM exits dominate
    (paper: 1.55x and ~2.9x). *)

val table4 : ?runs:int -> unit -> unit
(** SPLASH-2 kernels in a VM under CC-D: overheads 1.1x–12x, geometric
    mean ~2.3. *)

val table5 : ?runs:int -> unit -> unit
(** Memory-bandwidth copy: x86 DMR ~50% / TMR ~33% of baseline
    throughput; Arm degrades less (bus reserve). *)

val fig3 : ?workloads:string list -> ?records:int -> ?ops_factor:int -> unit -> unit
(** YCSB throughput over the KV server for N/A/S sync levels across
    Base/LC-D/LC-T/CC-D/CC-T on both architectures. *)

val table10 : ?runs:int -> unit -> unit
(** Error-recovery (downgrade) time: removing the primary is two orders
    of magnitude more expensive than another replica; CC primary > LC
    primary; no CC masking on Arm. *)

val fig4 : unit -> unit
(** Throughput timeline of a TMR KV system that downgrades to DMR when a
    fault is injected mid-run (error masking keeps it serving), then
    re-admits the repaired replica (the Section IV-C extension),
    returning to TMR without a reboot. *)

val ablation_fast_catchup : ?runs:int -> unit -> unit
(** Ablation of the fast catch-up extension (paper Section VI): CC-RCoE
    Whetstone with breakpoint-only catch-up vs PMU-assisted catch-up —
    debug-exception counts and overhead factors side by side. *)

val all : quick:bool -> unit
