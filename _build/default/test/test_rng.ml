open Rcoe_util

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 8 (fun _ -> Rng.next a) in
  let ys = List.init 8 (fun _ -> Rng.next b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_split_independence () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  (* Draw from the child; the parent must continue from where split left it,
     independent of how much the child is used. *)
  let parent' = Rng.copy parent in
  for _ = 1 to 50 do
    ignore (Rng.next child)
  done;
  for _ = 1 to 20 do
    Alcotest.(check int) "parent unaffected" (Rng.next parent') (Rng.next parent)
  done

let test_copy () =
  let a = Rng.create 9 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int) "copy replays" (Rng.next a) (Rng.next b)
  done

let test_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_rejects_bad_bound () =
  let r = Rng.create 3 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_float_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_next_nonnegative () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "non-negative" true (Rng.next r >= 0)
  done

let test_bool_mixes () =
  let r = Rng.create 6 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let qcheck_int_in_range =
  QCheck.Test.make ~name:"Rng.int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy replays" `Quick test_copy;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive bound" `Quick
      test_int_rejects_bad_bound;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "next non-negative" `Quick test_next_nonnegative;
    Alcotest.test_case "bool mixes" `Quick test_bool_mixes;
    QCheck_alcotest.to_alcotest qcheck_int_in_range;
  ]
