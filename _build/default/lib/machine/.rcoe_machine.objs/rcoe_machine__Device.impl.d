lib/machine/device.ml: Buffer Char
