(* Quantile accuracy, merge algebra, and edge cases of the log-linear
   HDR histogram, checked against an exact sorted-sample oracle. *)

module Hdr = Rcoe_obs.Hdr
module Rng = Rcoe_util.Rng

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  nn = 0 || go 0

(* The oracle uses the same rank convention as [Hdr.quantile]: the
   value at rank [ceil (q * n)] of the sorted samples. *)
let oracle_quantile samples q =
  let n = Array.length samples in
  if n = 0 then 0
  else if q >= 1.0 then samples.(n - 1)
  else
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    samples.(min (n - 1) (rank - 1))

(* Relative quantile error bound: each magnitude-[b] bucket spans
   1/128 of its lower bound, and representatives sit at midpoints, so
   |approx - exact| <= exact/128 always holds (plus 1 for rounding). *)
let check_quantiles ~label samples h =
  Array.sort compare samples;
  List.iter
    (fun q ->
      let exact = oracle_quantile samples q in
      let approx = Hdr.quantile h q in
      let tol = (exact / 128) + 1 in
      if abs (approx - exact) > tol then
        Alcotest.failf "%s q=%.3f: hdr %d vs oracle %d (tol %d)" label q
          approx exact tol)
    [ 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let fill_hdr samples =
  let h = Hdr.create () in
  Array.iter (Hdr.record h) samples;
  h

let test_accuracy_uniform () =
  let rng = Rng.create 42 in
  let samples = Array.init 20_000 (fun _ -> Rng.int rng 1_000_000) in
  let h = fill_hdr samples in
  Alcotest.(check int) "count" 20_000 (Hdr.count h);
  check_quantiles ~label:"uniform" samples h

let test_accuracy_zipf () =
  (* Heavy tail over ~9 decades: magnitude uniform, mantissa uniform. *)
  let rng = Rng.create 7 in
  let samples =
    Array.init 20_000 (fun _ ->
        let mag = Rng.int rng 30 in
        (1 lsl mag) + Rng.int rng (1 lsl mag))
  in
  let h = fill_hdr samples in
  check_quantiles ~label:"zipf" samples h

let test_accuracy_bimodal () =
  (* Fast path around 300 cycles, stall mode around 5M: the shape a
     rollback-afflicted latency distribution takes. *)
  let rng = Rng.create 13 in
  let samples =
    Array.init 20_000 (fun _ ->
        if Rng.int rng 100 < 90 then 200 + Rng.int rng 200
        else 5_000_000 + Rng.int rng 1_000_000)
  in
  let h = fill_hdr samples in
  check_quantiles ~label:"bimodal" samples h;
  (* p50 must sit in the fast mode, p99 in the stall mode. *)
  Alcotest.(check bool) "p50 fast" true (Hdr.quantile h 0.5 < 1_000);
  Alcotest.(check bool) "p99 stalled" true (Hdr.quantile h 0.99 > 4_000_000)

let hdr_fingerprint h =
  ( Hdr.count h,
    Hdr.sum h,
    Hdr.min_value h,
    Hdr.max_value h,
    List.rev
      (Hdr.fold_nonzero
         (fun ~acc ~lower ~upper ~count -> (lower, upper, count) :: acc)
         [] h) )

let test_merge_associative () =
  let rng = Rng.create 99 in
  let part () =
    let h = Hdr.create () in
    for _ = 1 to 3_000 do
      Hdr.record h (Rng.int rng 10_000_000)
    done;
    h
  in
  let a = part () and b = part () and c = part () in
  let left = Hdr.merge (Hdr.merge a b) c in
  let right = Hdr.merge a (Hdr.merge b c) in
  Alcotest.(check bool) "associative" true
    (hdr_fingerprint left = hdr_fingerprint right);
  let ba = Hdr.merge b a in
  Alcotest.(check bool) "commutative" true
    (hdr_fingerprint (Hdr.merge a b) = hdr_fingerprint ba);
  (* Merging partials equals recording everything into one histogram. *)
  let whole = Hdr.create () in
  List.iter
    (fun h -> Hdr.merge_into ~into:whole h)
    [ a; b; c ];
  Alcotest.(check bool) "merge = replay" true
    (hdr_fingerprint whole = hdr_fingerprint left);
  Alcotest.(check int) "merged count" 9_000 (Hdr.count whole)

let test_merge_leaves_inputs () =
  let a = Hdr.create () and b = Hdr.create () in
  Hdr.record a 10;
  Hdr.record b 20;
  ignore (Hdr.merge a b);
  Alcotest.(check int) "a unchanged" 1 (Hdr.count a);
  Alcotest.(check int) "b unchanged" 1 (Hdr.count b)

let test_empty () =
  let h = Hdr.create () in
  Alcotest.(check int) "count" 0 (Hdr.count h);
  Alcotest.(check int) "min" 0 (Hdr.min_value h);
  Alcotest.(check int) "max" 0 (Hdr.max_value h);
  Alcotest.(check int) "quantile" 0 (Hdr.quantile h 0.99)

let test_degenerate_exact () =
  (* A single value reports exactly at every quantile, wherever it
     lands in the bucket lattice. *)
  List.iter
    (fun v ->
      let h = Hdr.create () in
      Hdr.record h v;
      List.iter
        (fun q ->
          Alcotest.(check int)
            (Printf.sprintf "v=%d q=%.2f" v q)
            v (Hdr.quantile h q))
        [ 0.0; 0.5; 0.999; 1.0 ])
    [ 0; 1; 255; 256; 257; 4095; 4096; max_int ]

let test_small_values_exact () =
  (* Values below 256 are stored exactly, not just within tolerance. *)
  let h = Hdr.create () in
  for v = 0 to 255 do
    Hdr.record h v
  done;
  Alcotest.(check int) "p50" 127 (Hdr.quantile h 0.5);
  Alcotest.(check int) "max" 255 (Hdr.max_value h);
  Alcotest.(check int) "sum" (255 * 256 / 2) (Hdr.sum h)

let test_bucket_edges () =
  (* Lower bucket bounds at each magnitude boundary: the index math
     must keep [lower <= v < upper]. *)
  let h = Hdr.create () in
  let edges =
    [ 255; 256; 511; 512; 1 lsl 16; (1 lsl 16) - 1; 1 lsl 30; 1 lsl 45 ]
  in
  List.iter (Hdr.record h) edges;
  let ok =
    Hdr.fold_nonzero
      (fun ~acc ~lower ~upper ~count:_ -> acc && lower < upper)
      true h
  in
  Alcotest.(check bool) "bounds ordered" true ok;
  Alcotest.(check int) "all present" (List.length edges) (Hdr.count h);
  Alcotest.(check int) "max exact" (1 lsl 45) (Hdr.max_value h)

let test_negative_clamps () =
  let h = Hdr.create () in
  Hdr.record h (-5);
  Alcotest.(check int) "clamped to 0" 0 (Hdr.max_value h);
  Alcotest.(check int) "counted" 1 (Hdr.count h)

let test_record_n () =
  let a = Hdr.create () and b = Hdr.create () in
  Hdr.record_n a 1234 ~n:1000;
  for _ = 1 to 1000 do
    Hdr.record b 1234
  done;
  Alcotest.(check bool) "record_n = n records" true
    (hdr_fingerprint a = hdr_fingerprint b);
  Alcotest.(check int) "sum" (1234 * 1000) (Hdr.sum a)

let test_json_and_summary () =
  let h = Hdr.create () in
  for i = 1 to 100 do
    Hdr.record h (i * 100)
  done;
  let j = Rcoe_obs.Json.to_string (Hdr.to_json h) in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in json") true
        (contains j ("\"" ^ key ^ "\"")))
    [ "count"; "min"; "max"; "mean"; "p50"; "p90"; "p99"; "p999" ];
  Alcotest.(check bool) "summary mentions count" true
    (contains (Hdr.summary h) "n=100")

let suite =
  [
    Alcotest.test_case "accuracy: uniform" `Quick test_accuracy_uniform;
    Alcotest.test_case "accuracy: heavy tail" `Quick test_accuracy_zipf;
    Alcotest.test_case "accuracy: bimodal" `Quick test_accuracy_bimodal;
    Alcotest.test_case "merge associative/commutative" `Quick
      test_merge_associative;
    Alcotest.test_case "merge leaves inputs" `Quick test_merge_leaves_inputs;
    Alcotest.test_case "empty histogram" `Quick test_empty;
    Alcotest.test_case "degenerate exact" `Quick test_degenerate_exact;
    Alcotest.test_case "small values exact" `Quick test_small_values_exact;
    Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
    Alcotest.test_case "negative clamps" `Quick test_negative_clamps;
    Alcotest.test_case "record_n" `Quick test_record_n;
    Alcotest.test_case "json and summary" `Quick test_json_and_summary;
  ]
