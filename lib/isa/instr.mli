(** The simulated instruction set.

    A word-based RISC-like ISA with the specific features RCoE depends on:

    - conditional and unconditional branches (the unit of the precise
      logical clock),
    - an x86-style repeated string move [Rep_movs] that copies many words
      without executing branch instructions — the case that defeats naive
      breakpoint placement (paper Section III-D),
    - Arm-style exclusive load/store ([Ldex]/[Stex]) whose retry count can
      differ between replicas, and x86-style [Atomic_add]/[Cas] that cannot,
    - [Cntinc], the branch-counter increment inserted by the
      compiler-assisted pass (never written by hand),
    - [Syscall], the only way into the kernel.

    Instruction addresses are indices into the program's code array
    (Harvard layout: code is not addressable as data). *)

type target = Lbl of string | Abs of int
(** Branch targets: symbolic before assembly, absolute after. *)

type operand = Reg of Reg.t | Imm of int

type cond = Eq | Ne | Lt | Le | Gt | Ge

type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Asr

type falu = Fadd | Fsub | Fmul | Fdiv

type funop = Fmov | Fneg | Fabs | Fsqrt

type t =
  | Nop
  | Halt  (** Stop this hardware thread (used only by bare-metal stubs). *)
  | Mov of Reg.t * operand
  | La of Reg.t * string
      (** Load the address of a data label; becomes [Mov rd (Imm addr)]
          at assembly. *)
  | Alu of alu * Reg.t * Reg.t * operand  (** [rd <- rs op operand]. *)
  | Not of Reg.t * Reg.t
  | Ld of Reg.t * Reg.t * int  (** [rd <- mem\[rs + off\]]. *)
  | St of Reg.t * Reg.t * int  (** [mem\[rd + off\] <- rs]. *)
  | Push of Reg.t
  | Pop of Reg.t
  | B of cond * Reg.t * operand * target
      (** Branch if [rs cond operand]; counts as a branch. *)
  | Jmp of target
  | Jal of target  (** Call: [lr <- ip+1]; counts as a branch. *)
  | Jr of Reg.t  (** Indirect jump; counts as a branch. *)
  | Ret  (** [Jr lr]; counts as a branch. *)
  | Syscall of int
  | Rep_movs
      (** Copy [r2] words from [\[r1\]] to [\[r0\]]; advances [r0], [r1],
          clears [r2]. Executes without branch-counter increments. *)
  | Ldex of Reg.t * Reg.t  (** Exclusive load: [rd <- mem\[rs\]], arms monitor. *)
  | Stex of Reg.t * Reg.t * Reg.t
      (** [Stex (rres, rval, raddr)]: store if monitor still armed;
          [rres <- 0] on success, [1] on failure. *)
  | Atomic_add of Reg.t * Reg.t * operand
      (** x86 lock-xadd: [rd <- mem\[raddr\]]; [mem\[raddr\] += operand]. *)
  | Cas of Reg.t * Reg.t * Reg.t * Reg.t
      (** [Cas (rd, raddr, rexpect, rnew)]: [rd <- old]; store [rnew] if
          [old = rexpect]. *)
  | Cntinc  (** Compiler-inserted branch-counter increment (reserved r9). *)
  | Falu of falu * Reg.f * Reg.f * Reg.f
  | Funop of funop * Reg.f * Reg.f
  | Fldi of Reg.f * float
  | Fld of Reg.f * Reg.t * int
  | Fst of Reg.f * Reg.t * int
  | Fb of cond * Reg.f * Reg.f * target  (** Float compare-and-branch. *)
  | Itof of Reg.f * Reg.t
  | Ftoi of Reg.t * Reg.f

val is_branch : t -> bool
(** True for every instruction that increments the user branch counter:
    [B], [Jmp], [Jal], [Jr], [Ret], [Fb]. [Rep_movs] is deliberately not
    a branch even though it iterates. *)

val is_memory_access : t -> bool
(** True for instructions that touch data memory (bus-token consumers). *)

val target_of : t -> target option
(** The control-flow target, if any. *)

val with_target : t -> target -> t
(** Replace the target. Raises [Invalid_argument] if [target_of] is
    [None]. *)

val regs_used : t -> Reg.t list
(** Every integer register an instruction reads or writes, including the
    implicit [sp]/[lr] of [Push]/[Pop]/[Jal]/[Ret]. [Syscall] and
    [Cntinc] report none — this is the historical behaviour that
    {!Check.regs_used} re-exports for the syntactic scans. *)

val defs : t -> Reg.t list
(** Integer registers an instruction may write (kill set for dataflow).
    Conservative where the ISA is underspecified: [Syscall] is assumed
    to clobber [r0] (the kernel return-value register), and [Cntinc]
    writes the reserved branch counter. *)

val uses : t -> Reg.t list
(** Integer registers an instruction may read (gen set for dataflow).
    [Syscall] is assumed to read the argument registers [r0]-[r3]. *)

val to_string : t -> string
(** Disassembly, e.g. ["add r1, r2, #3"]. *)

val cond_to_string : cond -> string
val eval_cond : cond -> int -> int -> bool
val eval_fcond : cond -> float -> float -> bool
