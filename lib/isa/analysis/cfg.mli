(** Control-flow graphs over assembled programs.

    The graph is the substrate of the replication-safety analyzer: basic
    blocks with successor/predecessor edges, thread-entry roots
    (discovered through the [Sys_spawn] idiom), reachability, and
    dead-code detection. Branch targets that cannot be followed —
    symbolic labels, addresses outside the code array (the Harvard
    equivalent of a jump into data), or execution falling off the end —
    are recorded as {!issue}s instead of edges; the lint pass decides
    their severity based on reachability.

    Indirect jumps ([Jr]) are handled conservatively: they may target
    any code label of the program. *)

type edge_kind =
  | Fall  (** Sequential fallthrough (including the not-taken branch arm). *)
  | Jump  (** Taken [B]/[Fb]/[Jmp]. *)
  | Call  (** [Jal] into the callee. *)
  | Retsite  (** [Jal] to the instruction after it — the callee, assumed
                 balanced, eventually returns here. *)
  | Indirect  (** Conservative [Jr] edge to some code label. *)

type issue =
  | Out_of_range of int
      (** Branch target outside the code array (jump "into data"). *)
  | Symbolic of string  (** Target still a label: unassembled program. *)
  | Off_end  (** Execution can fall through past the last instruction. *)

type block = {
  id : int;
  first : int;  (** Address of the first instruction. *)
  last : int;  (** Address of the last instruction (inclusive). *)
  mutable succs : (int * edge_kind) list;  (** Successor block ids. *)
  mutable preds : (int * edge_kind) list;  (** Predecessor block ids. *)
}

type t = {
  program : Program.t;
  blocks : block array;  (** Every instruction belongs to exactly one. *)
  block_of_addr : int array;  (** Instruction address -> block id. *)
  insn_succs : (edge_kind * int) list array;
      (** Instruction-level successor addresses. *)
  issues : (int * issue) list;  (** Unfollowable control flow, by address. *)
  roots : (int * int) list;
      (** Thread entry points with concurrency multiplicity: the program
          entry has multiplicity 1; spawn targets get 2 when the spawn
          site sits on a cycle or several sites share the target
          (saturating — 2 already means "more than one concurrent
          instance can exist"). *)
  unknown_spawns : int list;
      (** Reachable spawn syscalls whose entry register could not be
          resolved to a constant; the root set is then conservatively
          widened to every code label. *)
  reachable : bool array;  (** Instruction reachable from some root. *)
}

val build :
  ?exit_syscalls:int list -> ?spawn_syscall:int -> Program.t -> t
(** Build the graph. [exit_syscalls] (default [[0]], [Sys_exit]) are
    treated as terminators; [spawn_syscall] (default [2], [Sys_spawn])
    drives root discovery: the entry address is recovered by scanning
    backwards from the spawn site for [mov r0, #entry], the idiom
    {!Wl.spawn_label} emits. *)

val reachable : t -> int -> bool
(** Is the instruction at this address reachable from any root? *)

val reachable_from : t -> int -> bool array
(** Instruction-level reachability from a single start address. *)

val in_cycle : t -> int -> bool
(** Is the instruction at this address on a control-flow cycle? *)

val dead_code : t -> (int * int) list
(** Maximal runs [(first, last)] of unreachable instructions. *)

val issue_to_string : issue -> string
