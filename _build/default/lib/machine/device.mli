(** Memory-mapped devices.

    A device occupies one or more device pages; user code reaches it
    through page-table entries with the device bit set (only the primary
    replica's driver is mapped to real devices — other replicas see
    aliased RAM, per the paper's sphere-of-replication boundary).

    Devices are records of closures so tests can build synthetic devices
    easily. *)

type t = {
  dev_name : string;
  read_reg : int -> int;
      (** [read_reg off]: MMIO read of word [off] within the device's
          page(s). Reads may have side effects (e.g. popping a FIFO). *)
  write_reg : int -> int -> unit;  (** [write_reg off v]. *)
  dev_tick : now:int -> unit;  (** Advance device time by one cycle. *)
  irq_pending : unit -> bool;
  irq_ack : unit -> unit;
}

val null : string -> t
(** A device that reads 0, ignores writes, never interrupts. *)

val console : unit -> t * Buffer.t
(** A write-only character console; returns the device and the buffer
    collecting output. Register 0: write a character code. *)
