(** The data-race tolerance microbenchmark (paper Section V-A1).

    32 threads each repeatedly: read a shared counter into a register,
    idle briefly, increment the register, write it back — with no lock,
    so increments are lost nondeterministically depending on exactly
    where preemptions land. Under LC-RCoE replicas preempt at the same
    *event count* but different instructions, so replicas lose different
    increments and their counters diverge (caught when the final counter
    enters the signature). Under CC-RCoE preemptions land at identical
    instructions, so all replicas compute the same (still "wrong"
    relative to locking) value and never diverge.

    The [locked] variant performs the increment through the kernel's
    atomic-update syscall instead — the paper's prescribed replacement —
    and is deterministic under both modes. *)

val default_threads : int
val default_iters : int

val program :
  ?threads:int -> ?iters:int -> ?locked:bool -> branch_count:bool -> unit ->
  Rcoe_isa.Program.t

val counter_label : string
