(* The interprocedural interval/stride analysis (Absint), the footprint
   extraction built on it (Footprint), and the parallel-eligibility
   verdicts they power (Eligibility) — including the headline claim: an
   analysis-approved networked kvstore runs on the parallel engine
   bit-for-bit identical to the sequential one, while a crafted raw
   DMA-ring store is rejected with instruction-address provenance. *)

open Rcoe_isa
open Rcoe_core
module Layout = Rcoe_kernel.Layout
module Metrics = Rcoe_obs.Metrics
module Kv_run = Rcoe_harness.Kv_run
module Ycsb = Rcoe_workloads.Ycsb

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let iv = Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Absint.iv_to_string v))
    ( = )

(* --- Interval domain --------------------------------------------------- *)

let test_ival_ops () =
  let open Absint in
  let j = join_iv (const 4) (const 10) in
  Alcotest.check iv "join of constants keeps the gap as stride"
    (mk ~stride:6 4 10) j;
  (match meet_iv (mk ~stride:4 0 100) (mk 10 20) with
  | None -> Alcotest.fail "meet should be non-empty"
  | Some m ->
      Alcotest.(check int) "meet lo aligned up" 12 m.lo;
      Alcotest.(check int) "meet hi aligned down" 20 m.hi;
      Alcotest.(check int) "meet keeps congruence" 4 m.stride);
  Alcotest.(check bool) "disjoint constants meet empty" true
    (meet_iv (const 3) (const 4) = None);
  Alcotest.check iv "add shifts both bounds" (mk 5 15)
    (add_iv (mk 0 10) (const 5));
  Alcotest.(check int) "add saturates at the symbolic infinity" pos_inf
    (add_iv (mk 0 pos_inf) (const 1)).hi;
  Alcotest.check iv "singleton multiply is exact" (const 42)
    (mul_iv (const 6) (const 7));
  Alcotest.(check bool) "huge multiply degrades to top" true
    (is_top (mul_iv top top));
  (* The abstract ALU must match the machine's shift masking (amount
     land 1023, >= 63 clears) and truncating division. *)
  Alcotest.check iv "shift by 70 clears like the core" (const 0)
    (alu_iv Instr.Shl (const 1) (const 70));
  Alcotest.check iv "division truncates toward zero" (const (-3))
    (alu_iv Instr.Div (const 7) (const (-2)))

(* Branch refinement by [!= c] on a strided interval must stay an
   over-approximation: {0,4,8} minus 0 is {4,8}, so the lower bound
   advances by the stride. Re-anchoring at c+1 would yield {1,5} — an
   under-approximation that once let Footprint shrink address bounds
   on countdown/pointer-walk loops ([p != base] with [p -= stride]). *)
let test_refine_ne_strided () =
  let open Absint in
  (match refine_ne (mk ~stride:4 0 8) 0 with
  | None -> Alcotest.fail "lo-edge refine of a non-singleton must not be empty"
  | Some r ->
      Alcotest.check iv "lo edge advances by the stride" (mk ~stride:4 4 8) r);
  (match refine_ne (mk ~stride:4 0 8) 8 with
  | None -> Alcotest.fail "hi-edge refine of a non-singleton must not be empty"
  | Some r ->
      Alcotest.check iv "hi edge rounds down onto the anchor"
        (mk ~stride:4 0 4) r);
  (match refine_ne (mk ~stride:4 0 8) 4 with
  | None -> Alcotest.fail "interior refine must not be empty"
  | Some r -> Alcotest.check iv "interior constant kept" (mk ~stride:4 0 8) r);
  Alcotest.(check bool) "singleton equal to c is unreachable" true
    (refine_ne (const 5) 5 = None);
  (match refine_ne (mk 0 1) 0 with
  | None -> Alcotest.fail "stride-1 lo-edge refine must not be empty"
  | Some r -> Alcotest.check iv "stride-1 lo edge advances by 1" (const 1) r)

(* End-to-end soundness of the same refinement: in a stride-4 countdown
   loop the abstract value at the body must cover every concrete value
   (8 and 4), and the exit refinement must pin the counter at 0. *)
let test_countdown_stride_loop_sound () =
  let a = Asm.create "countdown4" in
  Asm.movi a Reg.R1 8;
  Asm.while_ a Instr.Ne Reg.R1 (Instr.Imm 0) (fun () ->
      Asm.addi a Reg.R1 Reg.R1 (-4));
  Asm.halt a;
  let p = Asm.assemble a in
  let r = Absint.analyze (Cfg.build p) in
  Alcotest.(check bool) "converged" true (r.Absint.diverged = None);
  let find ins_pred =
    let found = ref (-1) in
    Array.iteri (fun i ins -> if ins_pred ins then found := i) p.Program.code;
    !found
  in
  let body =
    find (function
      | Instr.Alu (Instr.Add, Reg.R1, Reg.R1, Instr.Imm (-4)) -> true
      | _ -> false)
  in
  let halt_addr = find (( = ) Instr.Halt) in
  (match Absint.reg_of r.Absint.before body Reg.R1 with
  | None -> Alcotest.fail "loop body unreachable?"
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "body value covers {4, 8} (got %s)"
           (Absint.iv_to_string v))
        true
        (v.Absint.lo <= 4 && v.Absint.hi >= 8));
  match Absint.reg_of r.Absint.before halt_addr Reg.R1 with
  | None -> Alcotest.fail "halt unreachable?"
  | Some v ->
      Alcotest.check iv "exit refinement pins the counter at 0"
        (Absint.const 0) v

let test_widen_thresholds () =
  let open Absint in
  let ts = [| 0; 10; 100 |] in
  let w = widen_iv ts (mk 0 5) (mk 0 7) in
  Alcotest.(check int) "growing hi jumps to the next threshold" 10 w.hi;
  Alcotest.(check int) "stable lo untouched" 0 w.lo;
  let w = widen_iv ts (mk 0 10) (mk 0 101) in
  Alcotest.(check int) "past the ladder goes to infinity" pos_inf w.hi;
  let w = widen_iv ts (mk 5 10) (mk 3 10) in
  Alcotest.(check int) "shrinking lo drops to the next threshold down" 0 w.lo

(* A bounded counting loop must keep its bound: the loop constant is in
   the threshold ladder, so widening lands exactly on it instead of
   extrapolating to infinity — the precision/termination trade the
   analyzer makes (and the regression for interval chains that
   previously could only converge by degrading to top). *)
let test_loop_widening_precise () =
  let a = Asm.create "loop10" in
  Asm.movi a Reg.R1 0;
  Asm.while_ a Instr.Lt Reg.R1 (Instr.Imm 10) (fun () ->
      Asm.addi a Reg.R1 Reg.R1 1);
  Asm.halt a;
  let p = Asm.assemble a in
  let r = Absint.analyze (Cfg.build p) in
  Alcotest.(check bool) "converged" true (r.Absint.diverged = None);
  let halt_addr =
    let found = ref (-1) in
    Array.iteri (fun i ins -> if ins = Instr.Halt then found := i)
      p.Program.code;
    !found
  in
  match Absint.reg_of r.Absint.before halt_addr Reg.R1 with
  | None -> Alcotest.fail "halt unreachable?"
  | Some v ->
      Alcotest.(check int) "exit refinement gives the exact lower bound" 10
        v.Absint.lo;
      Alcotest.(check bool)
        (Printf.sprintf "upper bound stays tight (got %s)"
           (Absint.iv_to_string v))
        true
        (v.Absint.hi <= 11)

(* The Dataflow iteration guard: an interval-like lattice over an
   unbounded counting loop is an infinite ascending chain — without
   widening the solver must refuse to spin forever and raise Diverged;
   the same instance converges once a widening is supplied. *)
let test_dataflow_divergence_guard () =
  let a = Asm.create "count-forever" in
  Asm.movi a Reg.R1 0;
  Asm.while_ a Instr.Ge Reg.R1 (Instr.Imm 0) (fun () ->
      Asm.addi a Reg.R1 Reg.R1 1);
  Asm.halt a;
  let p = Asm.assemble a in
  let cfg = Cfg.build p in
  let module L = struct
    type t = Absint.ival option (* abstract value of R1; None = bottom *)

    let equal = ( = )

    let join x y =
      match (x, y) with
      | None, v | v, None -> v
      | Some x, Some y -> Some (Absint.join_iv x y)
  end in
  let module F = Dataflow.Make (L) in
  let transfer _addr ins fact =
    match fact with
    | None -> None
    | Some v -> (
        match ins with
        | Instr.Mov (Reg.R1, Instr.Imm n) -> Some (Absint.const n)
        | Instr.Alu (Instr.Add, Reg.R1, Reg.R1, Instr.Imm n) ->
            Some (Absint.add_iv v (Absint.const n))
        | _ -> Some v)
  in
  let solve ?widen () =
    F.solve ~cfg ~direction:Dataflow.Forward ~init:(Some Absint.top)
      ~bottom:None ~transfer ?widen ()
  in
  (match solve () with
  | _ -> Alcotest.fail "expected Dataflow.Diverged without widening"
  | exception Dataflow.Diverged _ -> ());
  let widen ~at:_ ~old j =
    match (old, j) with
    | Some o, Some jv -> Some (Absint.widen_iv [| 0; 1 |] o jv)
    | _ -> j
  in
  let r = solve ~widen () in
  Alcotest.(check int) "widened solve converges over every instruction"
    (Array.length p.Program.code)
    (Array.length r.F.before)

(* --- Footprints -------------------------------------------------------- *)

let test_footprint_accesses () =
  let a = Asm.create "touch" in
  Asm.space a "buf" 8;
  Asm.la a Reg.R1 "buf";
  Asm.ld a Reg.R2 Reg.R1 0;
  Asm.st a Reg.R1 Reg.R2 4;
  Asm.halt a;
  let r = Absint.analyze (Cfg.build (Asm.assemble a)) in
  match Footprint.of_result r with
  | [ rd; wr ] ->
      Alcotest.(check bool) "first is the load" true
        (rd.Footprint.a_kind = Footprint.Read);
      Alcotest.(check bool) "second is the store" true
        (wr.Footprint.a_kind = Footprint.Write);
      Alcotest.(check bool) "both addresses are exact" true
        (Absint.is_const rd.Footprint.a_range
        && Absint.is_const wr.Footprint.a_range);
      let base = rd.Footprint.a_range.Absint.lo in
      Alcotest.(check int) "store offset resolved" (base + 4)
        wr.Footprint.a_range.Absint.lo;
      let hit =
        { Footprint.rg_name = "window"; rg_lo = base + 4; rg_hi = base + 4 }
      in
      (match Footprint.violations ~forbidden:[ hit ] [ rd; wr ] with
      | [ v ] ->
          Alcotest.(check int) "violation carries the store's address"
            wr.Footprint.a_addr v.Footprint.v_access.Footprint.a_addr
      | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
      let miss = { Footprint.rg_name = "far"; rg_lo = 1; rg_hi = 2 } in
      Alcotest.(check int) "disjoint region is clean" 0
        (List.length (Footprint.violations ~forbidden:[ miss ] [ rd; wr ]))
  | acc -> Alcotest.failf "expected 2 accesses, got %d" (List.length acc)

(* --- Eligibility ------------------------------------------------------- *)

let net_config ?(engine = Config.Sequential) mode =
  {
    Config.default with
    Config.engine;
    mode;
    nreplicas = (if mode = Config.Base then 1 else 2);
    with_net = true;
    exception_barriers = true;
  }

(* A workload that stores straight into the DMA receive ring must be
   rejected, and the diagnostic must say which instruction. *)
let test_raw_dma_store_rejected () =
  let a = Asm.create "rawdma" in
  Asm.movi a Reg.R1 Layout.va_dma;
  Asm.movi a Reg.R2 7;
  Asm.st a Reg.R1 Reg.R2 0;
  Asm.movi a Reg.R0 0;
  Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  let e =
    Eligibility.check ~config:(net_config Config.CC)
      ~program:(Asm.assemble a)
  in
  Alcotest.(check bool) "rejected" false (Eligibility.eligible e);
  match Eligibility.diags e with
  | [ d ] ->
      Alcotest.(check (option int)) "provenance is the store instruction"
        (Some 2) d.Eligibility.d_addr;
      Alcotest.(check bool)
        (Printf.sprintf "names the ring (got %S)" d.Eligibility.d_message)
        true
        (contains d.Eligibility.d_message "DMA RX ring"
        && contains d.Eligibility.d_message "store")
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_raw_mmio_load_rejected () =
  let a = Asm.create "rawmmio" in
  Asm.movi a Reg.R1 Layout.va_mmio;
  Asm.ld a Reg.R2 Reg.R1 1;
  Asm.movi a Reg.R0 0;
  Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  let e =
    Eligibility.check ~config:(net_config Config.CC)
      ~program:(Asm.assemble a)
  in
  Alcotest.(check bool) "rejected" false (Eligibility.eligible e);
  let d = List.hd (Eligibility.diags e) in
  Alcotest.(check (option int)) "provenance is the load" (Some 1)
    d.Eligibility.d_addr;
  Alcotest.(check bool) "names the MMIO window" true
    (contains d.Eligibility.d_message "MMIO window")

(* The kvstore guest: CC interacts with the NIC only through the FT
   syscalls (the analyzer prunes the LC driver path via the get_info
   mode constant), LC polls the rings from user code, Base is
   categorically out. *)
let test_kvstore_verdicts () =
  let program = Rcoe_workloads.Kvstore.program ~branch_count:false () in
  let cc = Eligibility.check ~config:(net_config Config.CC) ~program in
  Alcotest.(check bool) "CC eligible" true (Eligibility.eligible cc);
  Alcotest.(check bool) "CC examined real accesses" true
    (cc.Eligibility.n_accesses > 0);
  Alcotest.(check bool) "interprocedural rounds ran" true
    (cc.Eligibility.rounds >= 1);
  let lc = Eligibility.check ~config:(net_config Config.LC) ~program in
  Alcotest.(check bool) "LC ineligible" false (Eligibility.eligible lc);
  let ds = Eligibility.diags lc in
  Alcotest.(check bool) "LC diagnostics exist" true (ds <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool) "every LC diagnostic has an address" true
        (d.Eligibility.d_addr <> None))
    ds;
  Alcotest.(check bool) "LC driver touches the MMIO window" true
    (List.exists
       (fun d -> contains d.Eligibility.d_message "MMIO window")
       ds);
  let base = Eligibility.check ~config:(net_config Config.Base) ~program in
  Alcotest.(check bool) "Base ineligible" false (Eligibility.eligible base)

let test_system_gating () =
  let program = Rcoe_workloads.Kvstore.program ~branch_count:false () in
  (* LC + parallel + net: rejected, and the exception carries the
     analyzer's verdict on top of the config-level reason. *)
  (match
     System.create
       ~config:(net_config ~engine:Config.Parallel Config.LC)
       ~program
   with
  | _ -> Alcotest.fail "LC parallel with_net must be rejected"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "rejection carries the analyzer verdict (got %S)" msg)
        true
        (contains msg "with_net" && contains msg "analyzer verdict"));
  (* CC + parallel + net: the footprint proof lifts the blanket ban. *)
  let sys =
    System.create ~config:(net_config ~engine:Config.Parallel Config.CC)
      ~program
  in
  (match System.eligibility sys with
  | Some e -> Alcotest.(check bool) "report eligible" true (Eligibility.eligible e)
  | None -> Alcotest.fail "networked system must expose the report");
  (* The report (and its metrics) exist on the sequential engine too —
     that is what keeps the metric registries engine-independent. *)
  let seq = System.create ~config:(net_config Config.CC) ~program in
  Alcotest.(check bool) "sequential engine also analyzed" true
    (System.eligibility seq <> None);
  let dry =
    System.create
      ~config:{ Config.default with Config.mode = Config.CC; nreplicas = 2 }
      ~program:(Rcoe_workloads.Dhrystone.program ~branch_count:false ())
  in
  Alcotest.(check bool) "no net, no report" true
    (System.eligibility dry = None)

let test_absint_metrics () =
  let program = Rcoe_workloads.Kvstore.program ~branch_count:false () in
  let sys = System.create ~config:(net_config Config.CC) ~program in
  let m = System.metrics sys in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true
        (List.mem n (Metrics.names m)))
    [
      "absint_host_us"; "absint_eligible"; "absint_diags"; "absint_accesses";
      "absint_rounds";
    ];
  let count n =
    match Metrics.find_counter m n with
    | Some c -> Metrics.count c
    | None -> -1
  in
  Alcotest.(check int) "verdict counter" 1 (count "absint_eligible");
  Alcotest.(check int) "no diagnostics" 0 (count "absint_diags");
  Alcotest.(check bool) "accesses counted" true (count "absint_accesses" > 0)

(* --- The headline differential ----------------------------------------- *)

(* An analysis-approved networked workload on the parallel engine is
   bit-for-bit the sequential run: same cycles, same responses, same
   outputs, same metric names and counter values. *)
let test_seq_par_identical () =
  let run engine =
    Kv_run.run
      ~config:(net_config ~engine Config.CC)
      ~workload:Ycsb.A ~records:16 ~operations:24 ()
  in
  let a = run Config.Sequential in
  let b = run Config.Parallel in
  Alcotest.(check int) "run-phase cycles" a.Kv_run.elapsed_cycles
    b.Kv_run.elapsed_cycles;
  Alcotest.(check int) "ops completed" a.Kv_run.ops_completed
    b.Kv_run.ops_completed;
  Alcotest.(check int) "final cycle" (System.now a.Kv_run.sys)
    (System.now b.Kv_run.sys);
  Alcotest.(check bool) "no halt" true
    (System.halted a.Kv_run.sys = None && System.halted b.Kv_run.sys = None);
  for rid = 0 to 1 do
    Alcotest.(check string)
      (Printf.sprintf "replica %d output" rid)
      (System.output a.Kv_run.sys rid)
      (System.output b.Kv_run.sys rid)
  done;
  let ma = System.metrics a.Kv_run.sys and mb = System.metrics b.Kv_run.sys in
  Alcotest.(check (list string)) "metric names" (Metrics.names ma)
    (Metrics.names mb);
  List.iter
    (fun n ->
      match (Metrics.find_counter ma n, Metrics.find_counter mb n) with
      | Some ca, Some cb ->
          Alcotest.(check int) ("counter " ^ n) (Metrics.count ca)
            (Metrics.count cb)
      | _ -> ())
    (Metrics.names ma)

(* --- Lint report hygiene (dedupe + deterministic order) ----------------- *)

let test_lint_report_order () =
  let rank f =
    match f.Lint.f_severity with
    | Lint.Error -> 0
    | Lint.Warning -> 1
    | Lint.Info -> 2
  in
  let key f =
    (rank f, match f.Lint.f_addr with None -> (0, 0) | Some a -> (1, a))
  in
  List.iter
    (fun (name, p) ->
      let fs = (Lint.analyze p).Lint.findings in
      Alcotest.(check int)
        (name ^ ": findings unique")
        (List.length fs)
        (List.length (List.sort_uniq compare fs));
      let rec sorted = function
        | a :: (b :: _ as rest) -> key a <= key b && sorted rest
        | _ -> true
      in
      Alcotest.(check bool)
        (name ^ ": sorted by severity then address")
        true (sorted fs))
    [
      ("kvstore", Rcoe_workloads.Kvstore.program ~branch_count:false ());
      ("datarace", Rcoe_workloads.Datarace.program ~branch_count:false ());
      ("md5sum", Rcoe_workloads.Md5sum.program ~branch_count:true ());
      ("splash:radix", Rcoe_workloads.Splash.program "radix" ~branch_count:false ());
    ]

let suite =
  [
    Alcotest.test_case "interval ops" `Quick test_ival_ops;
    Alcotest.test_case "Ne refinement keeps strided congruence" `Quick
      test_refine_ne_strided;
    Alcotest.test_case "stride-4 countdown loop sound" `Quick
      test_countdown_stride_loop_sound;
    Alcotest.test_case "threshold widening" `Quick test_widen_thresholds;
    Alcotest.test_case "bounded loop stays bounded" `Quick
      test_loop_widening_precise;
    Alcotest.test_case "dataflow divergence guard" `Quick
      test_dataflow_divergence_guard;
    Alcotest.test_case "footprint accesses + classification" `Quick
      test_footprint_accesses;
    Alcotest.test_case "raw DMA-ring store rejected" `Quick
      test_raw_dma_store_rejected;
    Alcotest.test_case "raw MMIO load rejected" `Quick
      test_raw_mmio_load_rejected;
    Alcotest.test_case "kvstore: CC eligible, LC/Base not" `Quick
      test_kvstore_verdicts;
    Alcotest.test_case "System.create gates on the verdict" `Quick
      test_system_gating;
    Alcotest.test_case "analyzer obs metrics" `Quick test_absint_metrics;
    Alcotest.test_case "net kvstore: Seq == Par bit-for-bit" `Slow
      test_seq_par_identical;
    Alcotest.test_case "lint findings deduped and ordered" `Quick
      test_lint_report_order;
  ]
