type target = Lbl of string | Abs of int

type operand = Reg of Reg.t | Imm of int

type cond = Eq | Ne | Lt | Le | Gt | Ge

type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Asr

type falu = Fadd | Fsub | Fmul | Fdiv

type funop = Fmov | Fneg | Fabs | Fsqrt

type t =
  | Nop
  | Halt
  | Mov of Reg.t * operand
  | La of Reg.t * string
  | Alu of alu * Reg.t * Reg.t * operand
  | Not of Reg.t * Reg.t
  | Ld of Reg.t * Reg.t * int
  | St of Reg.t * Reg.t * int
  | Push of Reg.t
  | Pop of Reg.t
  | B of cond * Reg.t * operand * target
  | Jmp of target
  | Jal of target
  | Jr of Reg.t
  | Ret
  | Syscall of int
  | Rep_movs
  | Ldex of Reg.t * Reg.t
  | Stex of Reg.t * Reg.t * Reg.t
  | Atomic_add of Reg.t * Reg.t * operand
  | Cas of Reg.t * Reg.t * Reg.t * Reg.t
  | Cntinc
  | Falu of falu * Reg.f * Reg.f * Reg.f
  | Funop of funop * Reg.f * Reg.f
  | Fldi of Reg.f * float
  | Fld of Reg.f * Reg.t * int
  | Fst of Reg.f * Reg.t * int
  | Fb of cond * Reg.f * Reg.f * target
  | Itof of Reg.f * Reg.t
  | Ftoi of Reg.t * Reg.f

let is_branch = function
  | B _ | Jmp _ | Jal _ | Jr _ | Ret | Fb _ -> true
  | Nop | Halt | Mov _ | La _ | Alu _ | Not _ | Ld _ | St _ | Push _ | Pop _
  | Syscall _ | Rep_movs | Ldex _ | Stex _ | Atomic_add _ | Cas _ | Cntinc
  | Falu _ | Funop _ | Fldi _ | Fld _ | Fst _ | Itof _ | Ftoi _ ->
      false

let is_memory_access = function
  | Ld _ | St _ | Push _ | Pop _ | Rep_movs | Ldex _ | Stex _ | Atomic_add _
  | Cas _ | Fld _ | Fst _ ->
      true
  | Nop | Halt | Mov _ | La _ | Alu _ | Not _ | B _ | Jmp _ | Jal _ | Jr _
  | Ret | Syscall _ | Cntinc | Falu _ | Funop _ | Fldi _ | Fb _ | Itof _
  | Ftoi _ ->
      false

let target_of = function
  | B (_, _, _, t) | Jmp t | Jal t | Fb (_, _, _, t) -> Some t
  | Nop | Halt | Mov _ | La _ | Alu _ | Not _ | Ld _ | St _ | Push _ | Pop _
  | Jr _ | Ret | Syscall _ | Rep_movs | Ldex _ | Stex _ | Atomic_add _
  | Cas _ | Cntinc | Falu _ | Funop _ | Fldi _ | Fld _ | Fst _ | Itof _
  | Ftoi _ ->
      None

let with_target i t =
  match i with
  | B (c, r, o, _) -> B (c, r, o, t)
  | Jmp _ -> Jmp t
  | Jal _ -> Jal t
  | Fb (c, a, b, _) -> Fb (c, a, b, t)
  | _ -> invalid_arg "Instr.with_target: instruction has no target"

let regs_used (i : t) : Reg.t list =
  let op = function Reg r -> [ r ] | Imm _ -> [] in
  match i with
  | Nop | Halt | Syscall _ | Cntinc | Fldi _ | Falu _ | Funop _ -> []
  | Mov (rd, o) -> rd :: op o
  | La (rd, _) -> [ rd ]
  | Alu (_, rd, rs, o) -> rd :: rs :: op o
  | Not (rd, rs) -> [ rd; rs ]
  | Ld (rd, rs, _) -> [ rd; rs ]
  | St (rbase, rs, _) -> [ rbase; rs ]
  | Push r -> [ r; Reg.sp ]
  | Pop r -> [ r; Reg.sp ]
  | B (_, r, o, _) -> r :: op o
  | Jmp _ -> []
  | Jal _ -> [ Reg.lr ]
  | Jr r -> [ r ]
  | Ret -> [ Reg.lr ]
  | Rep_movs -> [ Reg.R0; Reg.R1; Reg.R2 ]
  | Ldex (rd, rs) -> [ rd; rs ]
  | Stex (rres, rval, raddr) -> [ rres; rval; raddr ]
  | Atomic_add (rd, raddr, o) -> rd :: raddr :: op o
  | Cas (rd, raddr, rexp, rnew) -> [ rd; raddr; rexp; rnew ]
  | Fld (_, rs, _) -> [ rs ]
  | Fst (_, rbase, _) -> [ rbase ]
  | Fb _ -> []
  | Itof (_, rs) -> [ rs ]
  | Ftoi (rd, _) -> [ rd ]

let defs (i : t) : Reg.t list =
  match i with
  | Nop | Halt | St _ | B _ | Jmp _ | Jr _ | Ret | Fb _ | Falu _ | Funop _
  | Fldi _ | Fld _ | Fst _ | Itof _ ->
      []
  | Mov (rd, _) | La (rd, _) | Alu (_, rd, _, _) | Not (rd, _) | Ld (rd, _, _)
    ->
      [ rd ]
  | Push _ -> [ Reg.sp ]
  | Pop r -> [ r; Reg.sp ]
  | Jal _ -> [ Reg.lr ]
  | Syscall _ -> [ Reg.R0 ]
  | Rep_movs -> [ Reg.R0; Reg.R1; Reg.R2 ]
  | Ldex (rd, _) -> [ rd ]
  | Stex (rres, _, _) -> [ rres ]
  | Atomic_add (rd, _, _) -> [ rd ]
  | Cas (rd, _, _, _) -> [ rd ]
  | Cntinc -> [ Reg.branch_counter ]
  | Ftoi (rd, _) -> [ rd ]

let uses (i : t) : Reg.t list =
  let op = function Reg r -> [ r ] | Imm _ -> [] in
  match i with
  | Nop | Halt | La _ | Jmp _ | Jal _ | Falu _ | Funop _ | Fldi _ | Fb _ ->
      []
  | Mov (_, o) -> op o
  | Alu (_, _, rs, o) -> rs :: op o
  | Not (_, rs) -> [ rs ]
  | Ld (_, rs, _) -> [ rs ]
  | St (rbase, rs, _) -> [ rbase; rs ]
  | Push r -> [ r; Reg.sp ]
  | Pop _ -> [ Reg.sp ]
  | B (_, r, o, _) -> r :: op o
  | Jr r -> [ r ]
  | Ret -> [ Reg.lr ]
  | Syscall _ -> [ Reg.R0; Reg.R1; Reg.R2; Reg.R3 ]
  | Rep_movs -> [ Reg.R0; Reg.R1; Reg.R2 ]
  | Ldex (_, rs) -> [ rs ]
  | Stex (_, rval, raddr) -> [ rval; raddr ]
  | Atomic_add (_, raddr, o) -> raddr :: op o
  | Cas (_, raddr, rexp, rnew) -> [ raddr; rexp; rnew ]
  | Cntinc -> [ Reg.branch_counter ]
  | Fld (_, rs, _) -> [ rs ]
  | Fst (_, rbase, _) -> [ rbase ]
  | Itof (_, rs) -> [ rs ]
  | Ftoi _ -> []

let cond_to_string = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let eval_fcond c (a : float) (b : float) =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let alu_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Asr -> "asr"

let falu_to_string = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let funop_to_string = function
  | Fmov -> "fmov" | Fneg -> "fneg" | Fabs -> "fabs" | Fsqrt -> "fsqrt"

let operand_to_string = function
  | Reg r -> Reg.to_string r
  | Imm i -> "#" ^ string_of_int i

let target_to_string = function
  | Lbl s -> s
  | Abs i -> "@" ^ string_of_int i

let to_string = function
  | Nop -> "nop"
  | Halt -> "halt"
  | Mov (rd, o) -> Printf.sprintf "mov %s, %s" (Reg.to_string rd) (operand_to_string o)
  | La (rd, l) -> Printf.sprintf "la %s, %s" (Reg.to_string rd) l
  | Alu (op, rd, rs, o) ->
      Printf.sprintf "%s %s, %s, %s" (alu_to_string op) (Reg.to_string rd)
        (Reg.to_string rs) (operand_to_string o)
  | Not (rd, rs) -> Printf.sprintf "not %s, %s" (Reg.to_string rd) (Reg.to_string rs)
  | Ld (rd, rs, off) ->
      Printf.sprintf "ld %s, [%s+%d]" (Reg.to_string rd) (Reg.to_string rs) off
  | St (rd, rs, off) ->
      Printf.sprintf "st %s, [%s+%d]" (Reg.to_string rs) (Reg.to_string rd) off
  | Push r -> "push " ^ Reg.to_string r
  | Pop r -> "pop " ^ Reg.to_string r
  | B (c, r, o, t) ->
      Printf.sprintf "b%s %s, %s, %s" (cond_to_string c) (Reg.to_string r)
        (operand_to_string o) (target_to_string t)
  | Jmp t -> "jmp " ^ target_to_string t
  | Jal t -> "jal " ^ target_to_string t
  | Jr r -> "jr " ^ Reg.to_string r
  | Ret -> "ret"
  | Syscall n -> "syscall #" ^ string_of_int n
  | Rep_movs -> "rep movs"
  | Ldex (rd, rs) -> Printf.sprintf "ldex %s, [%s]" (Reg.to_string rd) (Reg.to_string rs)
  | Stex (rres, rval, raddr) ->
      Printf.sprintf "stex %s, %s, [%s]" (Reg.to_string rres)
        (Reg.to_string rval) (Reg.to_string raddr)
  | Atomic_add (rd, raddr, o) ->
      Printf.sprintf "xadd %s, [%s], %s" (Reg.to_string rd)
        (Reg.to_string raddr) (operand_to_string o)
  | Cas (rd, raddr, rexp, rnew) ->
      Printf.sprintf "cas %s, [%s], %s, %s" (Reg.to_string rd)
        (Reg.to_string raddr) (Reg.to_string rexp) (Reg.to_string rnew)
  | Cntinc -> "cntinc"
  | Falu (op, fd, fa, fb) ->
      Printf.sprintf "%s %s, %s, %s" (falu_to_string op) (Reg.f_to_string fd)
        (Reg.f_to_string fa) (Reg.f_to_string fb)
  | Funop (op, fd, fs) ->
      Printf.sprintf "%s %s, %s" (funop_to_string op) (Reg.f_to_string fd)
        (Reg.f_to_string fs)
  | Fldi (fd, x) -> Printf.sprintf "fldi %s, %g" (Reg.f_to_string fd) x
  | Fld (fd, rs, off) ->
      Printf.sprintf "fld %s, [%s+%d]" (Reg.f_to_string fd) (Reg.to_string rs) off
  | Fst (fs, rd, off) ->
      Printf.sprintf "fst %s, [%s+%d]" (Reg.f_to_string fs) (Reg.to_string rd) off
  | Fb (c, fa, fb, t) ->
      Printf.sprintf "fb%s %s, %s, %s" (cond_to_string c) (Reg.f_to_string fa)
        (Reg.f_to_string fb) (target_to_string t)
  | Itof (fd, rs) -> Printf.sprintf "itof %s, %s" (Reg.f_to_string fd) (Reg.to_string rs)
  | Ftoi (rd, fs) -> Printf.sprintf "ftoi %s, %s" (Reg.to_string rd) (Reg.f_to_string fs)
