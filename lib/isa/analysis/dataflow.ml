type direction = Forward | Backward

exception Diverged of int

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (L : LATTICE) = struct
  type result = { before : L.t array; after : L.t array }

  let solve ~cfg ~direction ~init ~bottom ~transfer ?(edge = fun _ x -> x)
      ?edge_at ?widen ?max_visits ?entries () =
    let blocks = cfg.Cfg.blocks in
    let code = cfg.Cfg.program.Program.code in
    let n = Array.length code in
    let nb = Array.length blocks in
    let budget =
      ref (match max_visits with Some m -> m | None -> 256 * (nb + 8))
    in
    let block_transfer b x =
      match direction with
      | Forward ->
          let acc = ref x in
          for i = b.Cfg.first to b.Cfg.last do
            acc := transfer i code.(i) !acc
          done;
          !acc
      | Backward ->
          let acc = ref x in
          for i = b.Cfg.last downto b.Cfg.first do
            acc := transfer i code.(i) !acc
          done;
          !acc
    in
    (* In-neighbours feed a block's boundary fact; out-neighbours are
       re-queued when its transferred fact changes. *)
    let in_neighbours b =
      match direction with
      | Forward -> b.Cfg.preds
      | Backward -> b.Cfg.succs
    in
    let out_neighbours b =
      match direction with
      | Forward -> b.Cfg.succs
      | Backward -> b.Cfg.preds
    in
    let is_entry =
      let set = Hashtbl.create 8 in
      (match (entries, direction) with
      | Some es, _ -> List.iter (fun a -> Hashtbl.replace set a ()) es
      | None, Forward ->
          List.iter (fun (a, _) -> Hashtbl.replace set a ()) cfg.Cfg.roots
      | None, Backward ->
          Array.iter
            (fun b ->
              if b.Cfg.succs = [] then Hashtbl.replace set b.Cfg.first ())
            blocks);
      fun b -> Hashtbl.mem set b.Cfg.first
    in
    let start = Array.make nb bottom in
    let finish = Array.make nb bottom in
    let on_list = Array.make nb false in
    let work = Queue.create () in
    let push id =
      if not on_list.(id) then begin
        on_list.(id) <- true;
        Queue.add id work
      end
    in
    (* The edge adjustment, addressed by the control-transfer instruction
       owning the edge: for P -> S that is always the last instruction of
       the source block P (the pred under Forward, [b] itself under
       Backward). *)
    let edge_fn ~src k x =
      match edge_at with Some f -> f ~src k x | None -> edge k x
    in
    Array.iter (fun b -> push b.Cfg.id) blocks;
    while not (Queue.is_empty work) do
      let id = Queue.pop work in
      on_list.(id) <- false;
      let b = blocks.(id) in
      if !budget <= 0 then raise (Diverged b.Cfg.first);
      decr budget;
      let boundary = if is_entry b then init else bottom in
      let inflow =
        List.fold_left
          (fun acc (p, k) ->
            let src =
              match direction with
              | Forward -> blocks.(p).Cfg.last
              | Backward -> b.Cfg.last
            in
            L.join acc (edge_fn ~src k finish.(p)))
          boundary (in_neighbours b)
      in
      let inflow =
        match widen with
        | Some w -> w ~at:b.Cfg.first ~old:start.(id) inflow
        | None -> inflow
      in
      start.(id) <- inflow;
      let out = block_transfer b inflow in
      if not (L.equal out finish.(id)) then begin
        finish.(id) <- out;
        List.iter (fun (s, _) -> push s) (out_neighbours b)
      end
    done;
    let before = Array.make n bottom and after = Array.make n bottom in
    Array.iter
      (fun b ->
        match direction with
        | Forward ->
            let x = ref start.(b.Cfg.id) in
            for i = b.Cfg.first to b.Cfg.last do
              before.(i) <- !x;
              x := transfer i code.(i) !x;
              after.(i) <- !x
            done
        | Backward ->
            let x = ref start.(b.Cfg.id) in
            for i = b.Cfg.last downto b.Cfg.first do
              after.(i) <- !x;
              x := transfer i code.(i) !x;
              before.(i) <- !x
            done)
      blocks;
    { before; after }
end

module Bits = struct
  type t = int

  let equal = Int.equal
  let join = ( lor )
end

module Live = Make (Bits)

let live_in cfg =
  let mask regs =
    List.fold_left (fun m r -> m lor (1 lsl Reg.index r)) 0 regs
  in
  let transfer _ ins live =
    live land lnot (mask (Instr.defs ins)) lor mask (Instr.uses ins)
  in
  let r =
    Live.solve ~cfg ~direction:Backward ~init:0 ~bottom:0 ~transfer ()
  in
  Array.map
    (fun m ->
      List.filter (fun reg -> m land (1 lsl Reg.index reg) <> 0) Reg.all)
    r.Live.before
