(* Seq/Par determinism of the serving harness at scale: a 10k-request
   YCSB run through the NIC must produce bit-for-bit identical request
   outcome logs, end-state signatures, and cycle counts on both
   engines — including a run that injects a fault and recovers through
   rollback, where the harness additionally exercises client-side
   retransmission over the DMA hole. Kept in its own binary because
   each pair costs tens of seconds; the fast serve checks live in the
   main suite ([test_serve.ml]). *)

open Rcoe_core
open Rcoe_harness
open Rcoe_workloads
module Arch = Rcoe_machine.Arch

(* Chunk 16000 amortises the parallel engine's per-[System.run] domain
   spawn/join over 40x more cycles than the CLI default; determinism
   only needs the two engines to share the same chunk. *)
let chunk = 16_000
let records = 128
let requests = 10_000

let base_config ~checkpoint_every () =
  {
    (Runner.config_for ~mode:Config.CC ~nreplicas:2 ~arch:Arch.X86
       ~with_net:true ~seed:5 ())
    with
    Config.checkpoint_every;
    max_rollbacks = 3;
  }

let parallel_config cfg =
  let cfg =
    { cfg with Config.engine = Config.Parallel; exception_barriers = true }
  in
  let program =
    Loadgen.program_for ~config:cfg ~workload:Ycsb.A ~records ~requests
  in
  let elig = Eligibility.check ~config:cfg ~program in
  Alcotest.(check bool) "kv server parallel-eligible" true
    (Eligibility.eligible elig);
  (match Config.parallel_ineligibility ~net_ok:true cfg with
  | None -> ()
  | Some reason -> Alcotest.failf "parallel rejected: %s" reason);
  cfg

let serve ?fault config =
  Loadgen.run ~config ~workload:Ycsb.A ~records ~requests ~chunk ?fault ()

let check_pair ~label (seq : Loadgen.result) (par : Loadgen.result) =
  Alcotest.(check bool) (label ^ ": seq finished") false seq.Loadgen.stalled;
  Alcotest.(check bool) (label ^ ": par finished") false par.Loadgen.stalled;
  Alcotest.(check int)
    (label ^ ": all answered")
    seq.Loadgen.issued seq.Loadgen.completed;
  Alcotest.(check int)
    (label ^ ": outcome digest")
    seq.Loadgen.outcome_digest par.Loadgen.outcome_digest;
  Alcotest.(check bool)
    (label ^ ": outcome logs identical")
    true
    (seq.Loadgen.outcome_log = par.Loadgen.outcome_log);
  Alcotest.(check bool)
    (label ^ ": end-state signatures identical")
    true
    (seq.Loadgen.end_sigs = par.Loadgen.end_sigs);
  Alcotest.(check int)
    (label ^ ": cycle counts identical")
    (System.now seq.Loadgen.sys)
    (System.now par.Loadgen.sys);
  Alcotest.(check int)
    (label ^ ": rollback counts identical")
    seq.Loadgen.rollbacks par.Loadgen.rollbacks

let test_identity_10k () =
  let base = base_config ~checkpoint_every:0 () in
  let seq = serve base in
  let par = serve (parallel_config base) in
  Alcotest.(check int) "10k run-phase ops" requests seq.Loadgen.run_ops;
  check_pair ~label:"healthy" seq par

let test_identity_10k_fault_rollback () =
  let fault =
    { Loadgen.fault_after = 2_000; fault_bit = 7;
      fault_target = Loadgen.Sig_word }
  in
  let base = base_config ~checkpoint_every:8 () in
  let seq = serve ~fault base in
  let par = serve ~fault (parallel_config base) in
  Alcotest.(check bool) "fault rolled back" true (seq.Loadgen.rollbacks >= 1);
  Alcotest.(check int) "retransmissions identical" seq.Loadgen.retransmits
    par.Loadgen.retransmits;
  Alcotest.(check int) "dup responses identical" seq.Loadgen.dup_responses
    par.Loadgen.dup_responses;
  check_pair ~label:"fault" seq par

(* The ingress drop-and-redeliver lane is pure simulated state (the
   NACK and re-consume happen at FT_Mem_Rep rendezvous, the
   retransmission at a chunk boundary), so a run that drops a corrupted
   DMA frame must still be bit-for-bit identical across engines. *)
let test_identity_ingress_drop () =
  let fault =
    { Loadgen.fault_after = 2_000; fault_bit = 4;
      fault_target = Loadgen.Dma_frame }
  in
  let base =
    { (base_config ~checkpoint_every:0 ()) with Config.ingress_check = true }
  in
  let seq = serve ~fault base in
  let par = serve ~fault (parallel_config base) in
  Alcotest.(check bool) "frame dropped at ingress" true
    (seq.Loadgen.ingress_dropped >= 1);
  Alcotest.(check int) "no client corruption" 0
    seq.Loadgen.counters.Ycsb.corrupted;
  Alcotest.(check int) "ingress drops identical" seq.Loadgen.ingress_dropped
    par.Loadgen.ingress_dropped;
  Alcotest.(check int) "redeliveries identical" seq.Loadgen.redelivered
    par.Loadgen.redelivered;
  check_pair ~label:"ingress" seq par

(* --- replay detection: input-log determinism at scale -------------------- *)

(* A 10k-request serve under replay detection is one long record/replay
   session: every host inject is logged, every chunk is re-executed from
   its delta checkpoint with the logged inputs re-injected at their
   recorded cycles, and a single non-deterministic step anywhere would
   surface as a chunk mismatch. Zero mismatches over 10k requests IS the
   input-log determinism property; running the whole session twice per
   execution backend (and across backends) then pins the bit-for-bit
   half: identical outcome logs, end signatures, and cycle counts. *)

let replay_serve_config ~backend =
  {
    (Runner.config_for ~mode:Config.Base ~nreplicas:1 ~arch:Arch.X86
       ~with_net:true ~seed:5 ())
    with
    Config.detection = Config.Replay;
    replay_chunk_ticks = 2;
    replay_queue_depth = 3;
    replay_checkers = 2;
    checkpoint_depth = 4;
    max_rollbacks = 3;
    exec_backend = backend;
  }

let replay_serve ?fault ~backend () =
  Loadgen.run
    ~config:(replay_serve_config ~backend)
    ~workload:Ycsb.A ~records ~requests ~chunk ?fault ()

let replay_counter sys name =
  match Rcoe_obs.Metrics.find_counter (System.metrics sys) name with
  | Some c -> Rcoe_obs.Metrics.count c
  | None -> Alcotest.failf "metric %s not registered" name

let check_replay_clean ~label (r : Loadgen.result) =
  Alcotest.(check bool) (label ^ ": finished") false r.Loadgen.stalled;
  Alcotest.(check int)
    (label ^ ": all answered")
    r.Loadgen.issued r.Loadgen.completed;
  Alcotest.(check int)
    (label ^ ": every chunk verified")
    (replay_counter r.Loadgen.sys "replay.chunks")
    (replay_counter r.Loadgen.sys "replay.chunks_verified");
  Alcotest.(check int)
    (label ^ ": zero mismatches")
    0
    (replay_counter r.Loadgen.sys "replay.mismatches")

let check_replay_pair ~label (a : Loadgen.result) (b : Loadgen.result) =
  Alcotest.(check int)
    (label ^ ": outcome digest")
    a.Loadgen.outcome_digest b.Loadgen.outcome_digest;
  Alcotest.(check bool)
    (label ^ ": outcome logs identical")
    true
    (a.Loadgen.outcome_log = b.Loadgen.outcome_log);
  Alcotest.(check bool)
    (label ^ ": end-state signatures identical")
    true
    (a.Loadgen.end_sigs = b.Loadgen.end_sigs);
  Alcotest.(check int)
    (label ^ ": cycle counts identical")
    (System.now a.Loadgen.sys)
    (System.now b.Loadgen.sys)

let test_replay_identity_10k () =
  let i1 = replay_serve ~backend:Config.Interp () in
  let i2 = replay_serve ~backend:Config.Interp () in
  let b1 = replay_serve ~backend:Config.Blocks () in
  let b2 = replay_serve ~backend:Config.Blocks () in
  Alcotest.(check int) "10k run-phase ops" requests i1.Loadgen.run_ops;
  check_replay_clean ~label:"interp" i1;
  check_replay_clean ~label:"blocks" b1;
  check_replay_pair ~label:"interp run-to-run" i1 i2;
  check_replay_pair ~label:"blocks run-to-run" b1 b2;
  check_replay_pair ~label:"interp = blocks" i1 b1;
  (* Same service as the lockstep reference: request outcomes must agree
     with a CC-DMR serve of the same load (completion *order* differs
     with the timing, the outcome set must not). *)
  let lockstep = serve (base_config ~checkpoint_every:0 ()) in
  Alcotest.(check int) "outcome set = lockstep reference"
    lockstep.Loadgen.outcome_sorted_digest i1.Loadgen.outcome_sorted_digest

let test_replay_fault_10k () =
  let fault =
    { Loadgen.fault_after = 2_000; fault_bit = 7;
      fault_target = Loadgen.Sig_word }
  in
  let a = replay_serve ~fault ~backend:Config.Interp () in
  let b = replay_serve ~fault ~backend:Config.Interp () in
  Alcotest.(check bool) "fault fired" true a.Loadgen.fault_fired;
  Alcotest.(check bool) "mismatch detected" true
    (replay_counter a.Loadgen.sys "replay.mismatches" >= 1);
  Alcotest.(check bool) "rolled back" true (a.Loadgen.rollbacks >= 1);
  Alcotest.(check bool) "finished" false a.Loadgen.stalled;
  Alcotest.(check int) "all answered" a.Loadgen.issued a.Loadgen.completed;
  Alcotest.(check int) "no client corruption" 0
    a.Loadgen.counters.Ycsb.corrupted;
  (* Recovered run serves the same outcome set as a fault-free one. *)
  let clean = replay_serve ~backend:Config.Interp () in
  Alcotest.(check int) "outcome set = fault-free reference"
    clean.Loadgen.outcome_sorted_digest a.Loadgen.outcome_sorted_digest;
  check_replay_pair ~label:"fault run-to-run" a b

let () =
  Alcotest.run "serve-determinism"
    [
      ( "serve-det",
        [
          Alcotest.test_case "seq = par, 10k requests" `Slow test_identity_10k;
          Alcotest.test_case "seq = par, 10k requests + fault/rollback" `Slow
            test_identity_10k_fault_rollback;
          Alcotest.test_case "seq = par, 10k requests + ingress drop" `Slow
            test_identity_ingress_drop;
        ] );
      ( "replay-det",
        [
          Alcotest.test_case "record/replay determinism, 10k requests" `Slow
            test_replay_identity_10k;
          Alcotest.test_case "record/replay fault campaign, 10k requests"
            `Slow test_replay_fault_10k;
        ] );
    ]
