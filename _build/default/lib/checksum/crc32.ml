let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update_byte crc byte =
  let t = Lazy.force table in
  t.((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let update crc c = update_byte crc (Char.code c)

let finish crc = crc lxor 0xFFFFFFFF

let string s =
  let crc = ref 0xFFFFFFFF in
  String.iter (fun c -> crc := update_byte !crc (Char.code c)) s;
  finish !crc

let words ws =
  let crc = ref 0xFFFFFFFF in
  Array.iter
    (fun w ->
      for shift = 0 to 3 do
        crc := update_byte !crc ((w lsr (8 * shift)) land 0xFF)
      done)
    ws;
  finish !crc
