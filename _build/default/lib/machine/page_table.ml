type pte = {
  valid : bool;
  writable : bool;
  dma : bool;
  device : bool;
  ppn : int;
}

let invalid_pte = { valid = false; writable = false; dma = false; device = false; ppn = 0 }

let encode p =
  (if p.valid then 1 else 0)
  lor (if p.writable then 2 else 0)
  lor (if p.dma then 4 else 0)
  lor (if p.device then 8 else 0)
  lor (p.ppn lsl 8)

let decode w =
  {
    valid = w land 1 <> 0;
    writable = w land 2 <> 0;
    dma = w land 4 <> 0;
    device = w land 8 <> 0;
    ppn = w lsr 8;
  }

let page_shift = 8
let page_size = 1 lsl page_shift

type table = { base : int; npages : int }

let table_words t = t.npages

let check_vpn t vpn =
  if vpn < 0 || vpn >= t.npages then
    invalid_arg (Printf.sprintf "Page_table: vpn %d out of range" vpn)

let set mem t ~vpn pte =
  check_vpn t vpn;
  Mem.write mem (t.base + vpn) (encode pte)

let get mem t ~vpn =
  check_vpn t vpn;
  decode (Mem.read mem (t.base + vpn))

let clear mem t = Mem.fill mem ~addr:t.base ~len:t.npages 0

type resolution =
  | Phys of int
  | Device of int * int
  | No_mapping
  | Not_writable

let vpn_of vaddr = vaddr lsr page_shift
let offset_of vaddr = vaddr land (page_size - 1)

let translate mem t ~vaddr ~write =
  let vpn = vpn_of vaddr in
  if vaddr < 0 || vpn >= t.npages then No_mapping
  else
    let pte = decode (Mem.read mem (t.base + vpn)) in
    if not pte.valid then No_mapping
    else if write && not pte.writable then Not_writable
    else
      let off = offset_of vaddr in
      if pte.device then Device (pte.ppn, off)
      else Phys ((pte.ppn lsl page_shift) lor off)
