test/test_ycsb.ml: Alcotest Array Kvstore List Printf QCheck QCheck_alcotest Rcoe_checksum Rcoe_workloads Ycsb
