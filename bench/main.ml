(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (Section V), plus Bechamel micro-benchmarks of the core
   primitives.

   Usage:  dune exec bench/main.exe -- [target ...]
   Targets: e1 table2 table3 table4 table5 fig3 table7x86 table7arm
            table8 table9 table10 fig4 latency ingress micro serve
            exec replay ckpt quick all
   Default (no argument): quick. *)

open Rcoe_harness

let spin_system ~mode ~nreplicas =
  let a = Rcoe_isa.Asm.create "spin" in
  Rcoe_isa.Asm.label a "main";
  Rcoe_isa.Asm.movi a Rcoe_isa.Reg.R4 0;
  Rcoe_isa.Asm.while_ a Rcoe_isa.Instr.Ge Rcoe_isa.Reg.R4
    (Rcoe_isa.Instr.Imm 0) (fun () ->
      Rcoe_isa.Asm.addi a Rcoe_isa.Reg.R4 Rcoe_isa.Reg.R4 1);
  Rcoe_isa.Asm.syscall a Rcoe_kernel.Syscall.sys_exit;
  let program = Rcoe_isa.Asm.assemble ~entry:"main" a in
  Rcoe_core.System.create
    ~config:
      (Runner.config_for ~mode ~nreplicas ~arch:Rcoe_machine.Arch.X86 ())
    ~program

let micro () =
  Printf.printf
    "\n================================================================\n";
  Printf.printf "Micro-benchmarks of core primitives (Bechamel, wall time)\n";
  Printf.printf
    "================================================================\n%!";
  let open Bechamel in
  (* Fletcher signature accumulation over a 64-word block. *)
  let words = Array.init 64 (fun i -> (i * 2654435761) land 0xFFFFFFFF) in
  let fletcher () =
    let f = Rcoe_checksum.Fletcher.create () in
    Rcoe_checksum.Fletcher.add_words f words;
    Rcoe_checksum.Fletcher.digest f
  in
  let crc () = Rcoe_checksum.Crc32.words words in
  let md5 () = Rcoe_checksum.Md5.words words in
  let base_sys = spin_system ~mode:Rcoe_core.Config.Base ~nreplicas:1 in
  let step_1k () = Rcoe_core.System.run base_sys ~max_cycles:1_000 in
  let lc_sys = spin_system ~mode:Rcoe_core.Config.LC ~nreplicas:3 in
  let step_lc_1k () = Rcoe_core.System.run lc_sys ~max_cycles:1_000 in
  let tests =
    Test.make_grouped ~name:"rcoe"
      [
        Test.make ~name:"fletcher-64w" (Staged.stage fletcher);
        Test.make ~name:"crc32-64w" (Staged.stage crc);
        Test.make ~name:"md5-64w" (Staged.stage md5);
        Test.make ~name:"sim-base-1kcycles" (Staged.stage step_1k);
        Test.make ~name:"sim-lc-tmr-1kcycles" (Staged.stage step_lc_1k);
      ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name r ->
      let est =
        match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "  %-28s %12.1f ns/run\n" name est)
    (List.sort compare !rows);
  print_newline ()

let quick () =
  Perf_experiments.all ~quick:true;
  Fault_experiments.all ~quick:true;
  micro ()

let full () =
  Perf_experiments.all ~quick:false;
  Fault_experiments.all ~quick:false;
  micro ()

let run_target = function
  | "e1" -> Perf_experiments.e1_datarace ()
  | "table2" -> Perf_experiments.table2 ()
  | "table3" -> Perf_experiments.table3 ()
  | "table4" -> Perf_experiments.table4 ()
  | "table5" -> Perf_experiments.table5 ()
  | "fig3" -> Perf_experiments.fig3 ()
  | "table7x86" -> Fault_experiments.table7 ~variant:`X86 ()
  | "table7arm" -> Fault_experiments.table7 ~variant:`Arm ()
  | "table8" -> Fault_experiments.table8 ()
  | "table9" -> Fault_experiments.table9 ()
  | "latency" -> Fault_experiments.detection_latency ()
  | "ingress" -> ignore (Fault_experiments.ingress_table ())
  | "table10" -> Perf_experiments.table10 ()
  | "fig4" -> Perf_experiments.fig4 ()
  | "micro" -> micro ()
  | "serve" -> Baseline.serve_table ()
  | "exec" -> Baseline.exec_table ()
  | "replay" -> Baseline.replay_table ()
  | "ckpt" -> Ckpt_bench.run ()
  | "baseline" -> Baseline.write ()
  | "baseline-check" -> Baseline.check ()
  | "quick" -> quick ()
  | "all" -> full ()
  | other ->
      Printf.eprintf
        "unknown target %S\n\
         targets: e1 table2 table3 table4 table5 fig3 table7x86 table7arm \
         table8 table9 table10 fig4 latency ingress micro serve exec replay \
         ckpt baseline baseline-check quick all\n"
        other;
      exit 1

let () =
  (* `baseline` / `baseline-check` accept an optional explicit path
     (default BENCH_baseline.json in the current directory). *)
  match Array.to_list Sys.argv with
  | [ _; "baseline"; path ] -> Baseline.write ~path ()
  | [ _; "baseline-check"; path ] -> Baseline.check ~path ()
  | _ :: first :: rest -> List.iter run_target (first :: rest)
  | _ -> quick ()
