open Rcoe_core

type result = {
  cycles : int;
  finished : bool;
  halted : System.halt_reason option;
  stats : System.stats;
  sys : System.t;
}

let run_program ~config ~program ?(max_cycles = 200_000_000) () =
  let sys = System.create ~config ~program in
  System.run sys ~max_cycles;
  {
    cycles = System.now sys;
    finished = System.finished sys;
    halted = System.halted sys;
    stats = System.stats sys;
    sys;
  }

let config_for ~mode ~nreplicas ~arch ?(sync_level = Config.Sync_args)
    ?(vm = false) ?(with_net = false) ?(seed = 1) ?(tick_interval = 50_000)
    ?(user_words = 192 * 1024) () =
  {
    Config.default with
    Config.mode;
    nreplicas;
    arch;
    sync_level;
    vm;
    with_net;
    seed;
    tick_interval;
    user_words;
    barrier_timeout = max 2_000_000 (tick_interval * 40);
  }

let standard_configs ~arch =
  [
    ("Base", config_for ~mode:Config.Base ~nreplicas:1 ~arch ());
    ("LC-D", config_for ~mode:Config.LC ~nreplicas:2 ~arch ());
    ("LC-T", config_for ~mode:Config.LC ~nreplicas:3 ~arch ());
    ("CC-D", config_for ~mode:Config.CC ~nreplicas:2 ~arch ());
    ("CC-T", config_for ~mode:Config.CC ~nreplicas:3 ~arch ());
  ]

let overhead ~base_cycles ~cycles =
  if base_cycles <= 0 then nan
  else float_of_int cycles /. float_of_int base_cycles
